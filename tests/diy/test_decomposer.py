"""Regular decomposer (common decomposition) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.diy import (
    Bounds,
    ContiguousAssigner,
    RegularDecomposer,
    RoundRobinAssigner,
    balanced_factors,
)


class TestBalancedFactors:
    def test_exact_squares(self):
        assert balanced_factors(4, 2) == (2, 2)
        assert balanced_factors(64, 3) == (4, 4, 4)

    def test_uneven(self):
        assert sorted(balanced_factors(6, 2)) == [2, 3]
        assert sorted(balanced_factors(12, 2)) == [3, 4]
        assert sorted(balanced_factors(12, 3)) == [2, 2, 3]

    def test_one_dim(self):
        assert balanced_factors(7, 1) == (7,)

    def test_prime_counts(self):
        assert sorted(balanced_factors(13, 2)) == [1, 13]

    def test_identity(self):
        assert balanced_factors(1, 3) == (1, 1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_factors(0, 2)
        with pytest.raises(ValueError):
            balanced_factors(4, 0)

    @given(st.integers(1, 4096), st.integers(1, 4))
    def test_prop_product_is_n(self, n, d):
        f = balanced_factors(n, d)
        assert len(f) == d
        assert int(np.prod(f)) == n

    @given(st.integers(1, 4096), st.integers(1, 4))
    def test_prop_balance(self, n, d):
        """No better-balanced factorization exists at this granularity:
        max/min ratio bounded by the largest prime factor involved."""
        f = balanced_factors(n, d)
        assert max(f) <= n
        assert min(f) >= 1


class TestRegularDecomposer:
    def test_partition_covers_domain_exactly(self):
        dec = RegularDecomposer((10, 10), 6)
        cover = np.zeros((10, 10), dtype=int)
        for gid in range(dec.ngrid_blocks):
            b = dec.block_bounds(gid)
            cover[b.min[0]:b.max[0], b.min[1]:b.max[1]] += 1
        assert (cover == 1).all()

    def test_six_blocks_on_2d(self):
        dec = RegularDecomposer((12, 12), 6)
        assert sorted(dec.grid) == [2, 3]
        assert dec.ngrid_blocks == 6

    def test_1d_particles_domain(self):
        dec = RegularDecomposer((1000,), 3)
        assert dec.grid == (3,)
        sizes = [dec.block_bounds(g).size for g in range(3)]
        assert sum(sizes) == 1000
        assert max(sizes) - min(sizes) <= 1

    def test_gid_coords_roundtrip(self):
        dec = RegularDecomposer((8, 8, 8), 8)
        for gid in range(dec.ngrid_blocks):
            assert dec.coords_to_gid(dec.gid_to_coords(gid)) == gid
        with pytest.raises(IndexError):
            dec.gid_to_coords(dec.ngrid_blocks)

    def test_point_gid(self):
        dec = RegularDecomposer((10,), 2)
        assert dec.point_gid((0,)) == 0
        assert dec.point_gid((4,)) == 0
        assert dec.point_gid((5,)) == 1
        assert dec.point_gid((9,)) == 1
        with pytest.raises(IndexError):
            dec.point_gid((10,))

    def test_blocks_intersecting_interior_box(self):
        dec = RegularDecomposer((12, 12), 4)  # 2x2 grid of 6x6 blocks
        gids = dec.blocks_intersecting(Bounds([5, 5], [7, 7]))
        assert sorted(gids) == [0, 1, 2, 3]
        gids = dec.blocks_intersecting(Bounds([0, 0], [6, 6]))
        assert gids == [0]

    def test_blocks_intersecting_clips_to_domain(self):
        dec = RegularDecomposer((12,), 3)
        gids = dec.blocks_intersecting(Bounds([8], [100]))
        assert gids == [2]

    def test_blocks_intersecting_empty(self):
        dec = RegularDecomposer((12,), 3)
        assert dec.blocks_intersecting(Bounds([4], [4])) == []

    def test_grid_clamped_to_extent(self):
        dec = RegularDecomposer((4,), 6)
        assert dec.grid == (4,)
        assert dec.ngrid_blocks == 4

    def test_degenerate_domain_rejected(self):
        with pytest.raises(ValueError):
            RegularDecomposer((0, 4), 2)
        with pytest.raises(ValueError):
            RegularDecomposer((4,), 0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 64),
           st.lists(st.integers(2, 20), min_size=1, max_size=3))
    def test_prop_blocks_partition(self, n, shape):
        dec = RegularDecomposer(tuple(shape), n)
        total = sum(dec.block_bounds(g).size for g in range(dec.ngrid_blocks))
        assert total == int(np.prod(shape))

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_prop_intersecting_blocks_complete(self, data):
        shape = tuple(data.draw(
            st.lists(st.integers(2, 16), min_size=1, max_size=2)))
        n = data.draw(st.integers(1, 16))
        dec = RegularDecomposer(shape, n)
        lo = [data.draw(st.integers(0, s - 1)) for s in shape]
        hi = [data.draw(st.integers(l + 1, s)) for l, s in zip(lo, shape)]
        q = Bounds(lo, hi)
        got = set(dec.blocks_intersecting(q))
        want = {g for g in range(dec.ngrid_blocks)
                if dec.block_bounds(g).intersects(q)}
        assert got == want


class TestAssigners:
    def test_contiguous_even(self):
        a = ContiguousAssigner(4, 8)
        assert [a.rank(g) for g in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
        assert a.gids(2) == [4, 5]

    def test_contiguous_uneven(self):
        a = ContiguousAssigner(3, 7)
        counts = [len(a.gids(r)) for r in range(3)]
        assert counts == [3, 2, 2]
        for r in range(3):
            for g in a.gids(r):
                assert a.rank(g) == r

    def test_round_robin(self):
        a = RoundRobinAssigner(3, 7)
        assert [a.rank(g) for g in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        assert a.gids(1) == [1, 4]

    def test_bounds_checks(self):
        a = ContiguousAssigner(2, 4)
        with pytest.raises(IndexError):
            a.rank(4)
        with pytest.raises(IndexError):
            a.gids(2)
        r = RoundRobinAssigner(2, 4)
        with pytest.raises(IndexError):
            r.rank(-1)
        with pytest.raises(IndexError):
            r.gids(5)
        with pytest.raises(ValueError):
            ContiguousAssigner(0, 4)
