"""Bounds tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.diy import Bounds
from repro.h5.selection import HyperslabSelection, NoneSelection


def test_basic_properties():
    b = Bounds([0, 2], [4, 6])
    assert b.ndim == 2
    assert b.shape == (4, 4)
    assert b.size == 16
    assert not b.empty


def test_empty_normalization():
    b = Bounds([3], [1])
    assert b.empty
    assert b.size == 0
    assert b.shape == (0,)


def test_from_shape_and_selection():
    assert Bounds.from_shape((3, 4)) == Bounds([0, 0], [3, 4])
    sel = HyperslabSelection((10, 10), (2, 3), (4, 2))
    assert Bounds.from_selection(sel) == Bounds([2, 3], [6, 5])


def test_intersect():
    a = Bounds([0, 0], [4, 4])
    b = Bounds([2, 2], [6, 6])
    assert a.intersect(b) == Bounds([2, 2], [4, 4])
    assert a.intersects(b)
    c = Bounds([4, 0], [8, 4])  # touching edge: no overlap (half-open)
    assert not a.intersects(c)
    assert a.intersect(c).empty


def test_contains():
    a = Bounds([0, 0], [4, 4])
    assert a.contains(Bounds([1, 1], [3, 3]))
    assert a.contains(Bounds([0, 0], [4, 4]))
    assert not a.contains(Bounds([1, 1], [5, 3]))
    assert a.contains(Bounds([2, 2], [2, 2]))  # empty is inside anything
    assert a.contains_point((0, 0))
    assert not a.contains_point((4, 0))


def test_union_bound():
    a = Bounds([0, 0], [2, 2])
    b = Bounds([3, 1], [5, 4])
    assert a.union_bound(b) == Bounds([0, 0], [5, 4])
    empty = Bounds([1, 1], [1, 1])
    assert a.union_bound(empty) == a
    assert empty.union_bound(a) == a


def test_to_selection():
    b = Bounds([1, 2], [3, 5])
    sel = b.to_selection((10, 10))
    assert isinstance(sel, HyperslabSelection)
    assert sel.npoints == 6
    empty = Bounds([1], [1]).to_selection((4,))
    assert isinstance(empty, NoneSelection)


def test_dimension_mismatch():
    with pytest.raises(ValueError):
        Bounds([0], [1]).intersect(Bounds([0, 0], [1, 1]))
    with pytest.raises(ValueError):
        Bounds([0, 0], [1])


def test_equality_and_hash():
    assert Bounds([0], [2]) == Bounds([0], [2])
    assert Bounds([0], [2]) != Bounds([0], [3])
    assert len({Bounds([0], [2]), Bounds([0], [2])}) == 1


boxes = st.integers(0, 10)


@given(st.lists(st.tuples(boxes, boxes, boxes, boxes), min_size=1, max_size=1))
def test_prop_intersection_matches_pointwise(params):
    (a0, a1, b0, b1), = params
    a = Bounds([min(a0, a1)], [max(a0, a1)])
    b = Bounds([min(b0, b1)], [max(b0, b1)])
    c = a.intersect(b)
    for x in range(12):
        inside = a.contains_point((x,)) and b.contains_point((x,))
        assert c.contains_point((x,)) == inside


@given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8),
       st.integers(0, 8))
def test_prop_intersection_commutes(a0, a1, b0, b1):
    a = Bounds([min(a0, a1)], [max(a0, a1)])
    b = Bounds([min(b0, b1)], [max(b0, b1)])
    assert a.intersect(b) == b.intersect(a)
