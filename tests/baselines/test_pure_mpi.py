"""Hand-written pure-MPI redistribution baseline tests."""

import numpy as np

from repro.baselines import pure_mpi_consumer, pure_mpi_producer
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow


def run_pure_mpi(nprod, ncons, shape):
    def producer(ctx):
        inter = ctx.intercomm("consumer")
        sel = producer_grid_selection(shape, ctx.rank, ctx.size)
        data = grid_values(sel, shape)
        cons_sels = [
            consumer_grid_selection(shape, r, ncons) for r in range(ncons)
        ]
        return pure_mpi_producer(inter, sel, data, cons_sels)

    def consumer(ctx):
        inter = ctx.intercomm("producer")
        sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        vals = pure_mpi_consumer(inter, sel, np.uint64)
        return validate_grid(sel, shape, vals)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf.run()


def test_3_to_1():
    res = run_pure_mpi(3, 1, (9, 6))
    assert all(res.returns["consumer"])
    assert res.returns["producer"] == [1, 1, 1]


def test_6_to_4():
    res = run_pure_mpi(6, 4, (12, 8))
    assert all(res.returns["consumer"])


def test_2_to_5():
    res = run_pure_mpi(2, 5, (10, 10))
    assert all(res.returns["consumer"])


def test_3d_grid():
    res = run_pure_mpi(4, 2, (8, 4, 4))
    assert all(res.returns["consumer"])


def test_per_point_serialization_charged():
    """The hand-written code pays per-element pack costs; with a high
    per-element cost its time dwarfs the wire time."""
    from repro.simmpi import NetworkModel

    shape = (64, 64)

    def producer(ctx):
        inter = ctx.intercomm("consumer")
        sel = producer_grid_selection(shape, ctx.rank, ctx.size)
        pure_mpi_producer(inter, sel, grid_values(sel, shape),
                          [consumer_grid_selection(shape, 0, 1)])

    def consumer(ctx):
        inter = ctx.intercomm("producer")
        sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        pure_mpi_consumer(inter, sel, np.uint64)

    def run(per_element):
        wf = Workflow()
        wf.add_task("producer", 2, producer)
        wf.add_task("consumer", 1, consumer)
        wf.add_link("producer", "consumer")
        return wf.run(model=NetworkModel(per_element_pack=per_element)).vtime

    assert run(1e-5) > run(1e-9) + 0.01  # 4096 points * 1e-5 = 0.04s+
