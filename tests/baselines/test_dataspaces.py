"""DataSpaces-like staging baseline tests."""

import numpy as np
import pytest

from repro.baselines import DataSpaces, dataspaces_server_main
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow


def run_dataspaces(nprod, ncons, nservers, shape, versions=(0,)):
    ds = DataSpaces(nservers)

    def producer(ctx):
        inter = ctx.intercomm("server")
        for v in versions:
            sel = producer_grid_selection(shape, ctx.rank, ctx.size)
            ds.put_local(inter, ctx.comm, "grid", v, sel,
                         grid_values(sel, shape) + v)
        ctx.comm.barrier()
        ds.finalize(inter, ctx.comm)

    def consumer(ctx):
        inter = ctx.intercomm("server")
        oks = []
        for v in versions:
            sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
            vals = ds.get(inter, ctx.comm, "grid", v, sel, np.uint64)
            expected = grid_values(sel, shape) + v
            oks.append(np.array_equal(np.asarray(vals).reshape(-1), expected))
        ctx.comm.barrier()
        ds.finalize(inter, ctx.comm)
        return all(oks)

    def server(ctx):
        inters = [ctx.intercomm("producer"), ctx.intercomm("consumer")]
        dataspaces_server_main(ds, inters)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_task("server", nservers, server)
    wf.add_link("producer", "server")
    wf.add_link("consumer", "server")
    return wf.run()


def test_3_to_1_single_server():
    res = run_dataspaces(3, 1, 1, (9, 6))
    assert all(res.returns["consumer"])


def test_6_to_4_two_servers():
    res = run_dataspaces(6, 4, 2, (12, 8))
    assert all(res.returns["consumer"])


def test_sharded_dht_many_servers():
    res = run_dataspaces(4, 2, 4, (16, 8))
    assert all(res.returns["consumer"])


def test_multiple_versions():
    res = run_dataspaces(2, 2, 1, (8, 8), versions=(0, 1, 2))
    assert all(res.returns["consumer"])


def test_get_blocks_until_coverage():
    """A consumer that gets before producers put must still see full
    data (the server defers until the region is covered)."""
    ds = DataSpaces(1)
    shape = (8, 4)

    def producer(ctx):
        inter = ctx.intercomm("server")
        ctx.comm.compute(0.5)  # simulate being late
        sel = producer_grid_selection(shape, ctx.rank, ctx.size)
        ds.put_local(inter, ctx.comm, "g", 0, sel, grid_values(sel, shape))
        ds.finalize(inter, ctx.comm)

    def consumer(ctx):
        inter = ctx.intercomm("server")
        sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        vals = ds.get(inter, ctx.comm, "g", 0, sel, np.uint64)
        ds.finalize(inter, ctx.comm)
        return validate_grid(sel, shape, vals)

    def server(ctx):
        dataspaces_server_main(
            ds, [ctx.intercomm("producer"), ctx.intercomm("consumer")]
        )

    wf = Workflow()
    wf.add_task("producer", 2, producer)
    wf.add_task("consumer", 1, consumer)
    wf.add_task("server", 1, server)
    wf.add_link("producer", "server")
    wf.add_link("consumer", "server")
    res = wf.run()
    assert all(res.returns["consumer"])
    # The consumer's completion time includes waiting for the late puts.
    assert res.vtime >= 0.5


def test_requires_at_least_one_server():
    with pytest.raises(ValueError):
        DataSpaces(0)
