"""Bredala-like container/redistribution tests (paper Figs. 9-10)."""

import numpy as np
import pytest

from repro.baselines import (
    Container,
    Field,
    REDIST_BBOX,
    REDIST_CONTIGUOUS,
    redistribute_consumer,
    redistribute_producer,
)
from repro.baselines.bredala import BredalaCosts, _even_ranges
from repro.diy import RegularDecomposer
from repro.workflow import Workflow


def test_field_validation():
    with pytest.raises(ValueError):
        Field("x", "banana", np.float32)
    with pytest.raises(ValueError):
        Field("x", REDIST_BBOX, np.float32)  # no domain


def test_container_rejects_duplicates():
    c = Container()
    c.append(Field("a", REDIST_CONTIGUOUS, np.float32, global_count=4))
    with pytest.raises(ValueError):
        c.append(Field("a", REDIST_CONTIGUOUS, np.float32, global_count=4))
    assert len(c) == 1


def test_even_ranges():
    assert _even_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
    assert _even_ranges(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
    assert _even_ranges(2, 3) == [(0, 1), (1, 2), (2, 2)]


def run_bredala(nprod, ncons, n_particles=60, domain=(12, 8)):
    """Both policies in one epoch: particles contiguous, grid bbox."""
    def producer(ctx):
        inter = ctx.intercomm("consumer")
        # Particles: contiguous list, values encode global index.
        base, rem = divmod(n_particles, ctx.size)
        start = ctx.rank * base + min(ctx.rank, rem)
        count = base + (1 if ctx.rank < rem else 0)
        pvals = np.arange(start, start + count, dtype=np.float32)
        pvals = np.stack([pvals, pvals + 0.25, pvals + 0.5], axis=1)
        # Grid: row-slab of the domain with bbox policy.
        rows = domain[0]
        gbase, grem = divmod(rows, ctx.size)
        gstart = ctx.rank * gbase + min(ctx.rank, grem)
        gcount = gbase + (1 if ctx.rank < grem else 0)
        xs, ys = np.meshgrid(
            np.arange(gstart, gstart + gcount), np.arange(domain[1]),
            indexing="ij",
        )
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
        gvals = np.ravel_multi_index(tuple(coords.T), domain).astype(np.uint64)

        c = Container()
        c.append(Field("particles", REDIST_CONTIGUOUS, np.float32,
                       item_shape=(3,), data=pvals,
                       global_count=n_particles))
        c.append(Field("grid", REDIST_BBOX, np.uint64, data=gvals,
                       coords=coords, domain=domain))
        redistribute_producer(inter, ctx.comm, c)

    def consumer(ctx):
        inter = ctx.intercomm("producer")
        c = Container()
        c.append(Field("particles", REDIST_CONTIGUOUS, np.float32,
                       item_shape=(3,), global_count=n_particles))
        c.append(Field("grid", REDIST_BBOX, np.uint64, domain=domain))
        out = redistribute_consumer(inter, ctx.comm, c)

        start, parts = out["particles"]
        ids = np.arange(start, start + len(parts), dtype=np.float32)
        ok_parts = (
            np.array_equal(parts[:, 0], ids)
            and np.array_equal(parts[:, 1], ids + 0.25)
            and np.array_equal(parts[:, 2], ids + 0.5)
        )

        blk, grid = out["grid"]
        if grid.size:
            xs, ys = np.meshgrid(
                np.arange(blk.min[0], blk.max[0]),
                np.arange(blk.min[1], blk.max[1]),
                indexing="ij",
            )
            expected = np.ravel_multi_index(
                (xs.ravel(), ys.ravel()), domain
            ).astype(np.uint64).reshape(grid.shape)
            ok_grid = np.array_equal(grid, expected)
        else:
            ok_grid = True
        return ok_parts and ok_grid

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf.run()


def test_3_to_1():
    res = run_bredala(3, 1)
    assert all(res.returns["consumer"])


def test_6_to_4():
    res = run_bredala(6, 4)
    assert all(res.returns["consumer"])


def test_2_to_3_uneven():
    res = run_bredala(2, 3, n_particles=31, domain=(9, 5))
    assert all(res.returns["consumer"])


def test_bbox_policy_pays_pair_index_cost():
    """The quadratic index term dominates as task sizes grow (the
    mechanism behind Fig. 9's Bredala blow-up)."""
    costs = BredalaCosts()
    small = costs.per_pair_index * 3 * 1
    big = costs.per_pair_index * 3072 * 1024
    assert big / small > 1e5


def test_point_gids_vectorized_matches_scalar():
    dec = RegularDecomposer((12, 8), 6)
    pts = np.array([[0, 0], [11, 7], [5, 3], [6, 4]])
    got = dec.point_gids(pts)
    want = [dec.point_gid(tuple(p)) for p in pts]
    assert list(got) == want
    with pytest.raises(IndexError):
        dec.point_gids(np.array([[12, 0]]))
    with pytest.raises(ValueError):
        dec.point_gids(np.array([[1, 2, 3]]))
