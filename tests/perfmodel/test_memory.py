"""Memory-footprint model tests (the paper's 'three copies' discussion)."""

import pytest

from repro.perfmodel.memory import (
    bredala_footprint,
    dataspaces_footprint,
    footprint_table,
    lowfive_footprint,
    pure_mpi_footprint,
)

MB = 10**6


class TestLowFive:
    def test_zero_copy_one_copy(self):
        fp = lowfive_footprint(16 * MB, zero_copy=True)
        assert fp.copies == 1.0
        assert fp.bytes == 16 * MB

    def test_deep_copy_two_copies(self):
        fp = lowfive_footprint(16 * MB)
        assert fp.copies == 2.0

    def test_nyx_repack_three_copies(self):
        """Paper Sec. IV-C: "up to three copies of the same data (one
        native, one repacked, and one in LowFive)"."""
        fp = lowfive_footprint(16 * MB, repack=True)
        assert fp.copies == 3.0
        labels = [l for l, _ in fp.breakdown]
        assert labels == ["native", "repacked", "lowfive (deep copy)"]

    def test_zero_copy_with_repack_rejected(self):
        with pytest.raises(ValueError):
            lowfive_footprint(MB, zero_copy=True, repack=True)

    def test_file_mode_no_transport_copy(self):
        fp = lowfive_footprint(MB, file_mode=True)
        assert fp.copies == 1.0


class TestBaselines:
    def test_pure_mpi_stages_a_copy(self):
        assert pure_mpi_footprint(MB).copies == 2.0

    def test_dataspaces_put_local_in_place(self):
        """The paper used dspaces_put_local so "the server only
        maintains indexing metadata" -- no data copy."""
        assert dataspaces_footprint(MB).copies == 1.0
        assert dataspaces_footprint(MB, put_local=False).copies == 2.0

    def test_bredala_coordinate_overhead(self):
        fp = bredala_footprint(MB, ndim=3)
        assert fp.copies == 5.0  # native + (1 data + 3 coords) staging
        assert bredala_footprint(MB, ndim=1).copies == 3.0


class TestTable:
    def test_table_orders_lowfive_zero_copy_leanest(self):
        rows = dict(footprint_table(MB))
        transports = {
            k: v for k, v in rows.items() if "file mode" not in k
        }
        leanest = min(transports.items(), key=lambda kv: kv[1].copies)
        assert leanest[0] in ("LowFive zero-copy", "DataSpaces put_local")
        assert rows["Bredala (bbox policy)"].copies == max(
            v.copies for v in rows.values()
        )

    def test_str_rendering(self):
        fp = lowfive_footprint(MB, repack=True)
        s = str(fp)
        assert "3 copies" in s and "repacked" in s
