"""Golden calibration regression tests.

EXPERIMENTS.md documents the modeled series these constants produce;
this test pins them (with slack) so an accidental constant change that
silently breaks the documented reproduction fails loudly. Update the
goldens *together with* EXPERIMENTS.md when recalibrating on purpose.
"""

import pytest

from repro.perfmodel import (
    CORI_HASWELL,
    THETA_KNL,
    bredala_times,
    dataspaces_time,
    lowfive_file_time,
    lowfive_memory_time,
    pure_hdf5_time,
    pure_mpi_time,
)
from repro.perfmodel.nyx_reeber import nyx_reeber_times
from repro.synth import SyntheticWorkload

WL = SyntheticWorkload()
TOL = 0.15  # recalibration slack

# (total procs) -> seconds, from EXPERIMENTS.md.
GOLDEN_LF_MEM = {4: 1.19, 64: 1.91, 1024: 2.64, 16384: 3.41}
GOLDEN_MPI = {4: 1.56, 1024: 2.68, 16384: 3.31}
GOLDEN_HDF5 = {4: 2.55, 64: 3.49, 1024: 156.4}
GOLDEN_LF_FILE = {4: 4.16, 64: 5.84, 1024: 159.6}
GOLDEN_DS_HASWELL = {4: 0.25, 4096: 0.44}
GOLDEN_LF_HASWELL = {4: 0.40, 4096: 1.01}
GOLDEN_BREDALA_TOTAL = {4: 5.35, 4096: 195.0}


def split(P):
    return WL.split_procs(P)


@pytest.mark.parametrize("P,want", sorted(GOLDEN_LF_MEM.items()))
def test_lowfive_memory_golden(P, want):
    assert lowfive_memory_time(*split(P), WL, THETA_KNL) == \
        pytest.approx(want, rel=TOL)


@pytest.mark.parametrize("P,want", sorted(GOLDEN_MPI.items()))
def test_pure_mpi_golden(P, want):
    assert pure_mpi_time(*split(P), WL, THETA_KNL) == \
        pytest.approx(want, rel=TOL)


@pytest.mark.parametrize("P,want", sorted(GOLDEN_HDF5.items()))
def test_pure_hdf5_golden(P, want):
    assert pure_hdf5_time(*split(P), WL, THETA_KNL) == \
        pytest.approx(want, rel=TOL)


@pytest.mark.parametrize("P,want", sorted(GOLDEN_LF_FILE.items()))
def test_lowfive_file_golden(P, want):
    assert lowfive_file_time(*split(P), WL, THETA_KNL) == \
        pytest.approx(want, rel=TOL)


@pytest.mark.parametrize("P,want", sorted(GOLDEN_DS_HASWELL.items()))
def test_dataspaces_golden(P, want):
    assert dataspaces_time(*split(P), WL, CORI_HASWELL) == \
        pytest.approx(want, rel=TOL)


@pytest.mark.parametrize("P,want", sorted(GOLDEN_LF_HASWELL.items()))
def test_lowfive_haswell_golden(P, want):
    assert lowfive_memory_time(*split(P), WL, CORI_HASWELL) == \
        pytest.approx(want, rel=TOL)


@pytest.mark.parametrize("P,want", sorted(GOLDEN_BREDALA_TOTAL.items()))
def test_bredala_golden(P, want):
    assert bredala_times(*split(P), WL, THETA_KNL)["total"] == \
        pytest.approx(want, rel=TOL)


def test_table2_goldens():
    row = nyx_reeber_times(1024)
    assert row["hdf5_write"] == pytest.approx(886.8, rel=TOL)
    assert row["lowfive_write"] == pytest.approx(2.25, rel=TOL)
    assert row["plotfile_write"] == pytest.approx(19.1, rel=TOL)
    assert nyx_reeber_times(2048)["hdf5_write"] is None
