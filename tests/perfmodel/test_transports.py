"""Analytic performance-model tests.

Two kinds of checks: (1) the *shapes* the paper reports must hold at the
paper's scales; (2) executed simmpi runs and the analytic model must
agree at overlapping (small) scales.
"""

import numpy as np
import pytest

from repro.perfmodel import (
    CORI_HASWELL,
    THETA_KNL,
    bredala_times,
    dataspaces_time,
    lowfive_file_time,
    lowfive_memory_time,
    pure_hdf5_time,
    pure_mpi_time,
)
from repro.perfmodel.nyx_reeber import DNF_SECONDS, nyx_reeber_times, table2_rows
from repro.perfmodel.transports import grid_geometry, list_geometry
from repro.synth import SyntheticWorkload

WL = SyntheticWorkload()
SCALES = [4, 16, 64, 256, 1024, 4096, 16384]


def split(P):
    return WL.split_procs(P)


class TestGeometry:
    def test_grid_geometry_conservation(self):
        shape = WL.grid_shape(48)
        gg = grid_geometry(shape, 48, 16)
        # Every cell is read exactly once and served exactly once.
        assert gg.cons_cells.sum() == int(np.prod(shape))
        assert gg.prod_cells.sum() == int(np.prod(shape))
        assert (gg.cons_owners >= 1).all()
        assert (gg.cons_common >= 1).all()

    def test_list_geometry_conservation(self):
        lg = list_geometry(10**6, 12, 4)
        assert lg.cons_items.sum() == 10**6
        assert lg.prod_items.sum() == 10**6
        assert (lg.cons_owners >= 1).all()

    def test_owners_bounded_by_producers(self):
        gg = grid_geometry(WL.grid_shape(6), 6, 4)
        assert (gg.cons_owners <= 6).all()


class TestFig5Shapes:
    """File mode is orders of magnitude slower; memory mode rises slowly."""

    def test_file_much_slower_than_memory(self):
        for P in (64, 256, 1024):
            nprod, ncons = split(P)
            t_file = lowfive_file_time(nprod, ncons, WL)
            t_mem = lowfive_memory_time(nprod, ncons, WL)
            assert t_file > 3 * t_mem
        nprod, ncons = split(1024)
        assert lowfive_file_time(nprod, ncons, WL) > \
            30 * lowfive_memory_time(nprod, ncons, WL)

    def test_memory_mode_rises_slowly(self):
        times = [lowfive_memory_time(*split(P), WL) for P in SCALES]
        assert all(b > a for a, b in zip(times, times[1:]))  # monotone
        assert times[-1] < 4 * times[0]  # but only a few x over 4096x procs

    def test_memory_mode_seconds_scale(self):
        # Paper: ~3s at 16K procs / 223 GiB on Theta.
        t = lowfive_memory_time(*split(16384), WL)
        assert 1.0 < t < 10.0


class TestFig6Shapes:
    """LowFive file-mode overhead vs pure HDF5 shrinks at scale."""

    def test_overhead_bounded(self):
        for P in (4, 16, 64, 256, 1024):
            nprod, ncons = split(P)
            ratio = lowfive_file_time(nprod, ncons, WL) / \
                pure_hdf5_time(nprod, ncons, WL)
            assert 1.0 < ratio < 2.5

    def test_overhead_converges(self):
        r64 = lowfive_file_time(*split(64), WL) / pure_hdf5_time(*split(64), WL)
        r1k = lowfive_file_time(*split(1024), WL) / \
            pure_hdf5_time(*split(1024), WL)
        assert r1k < r64


class TestFig7Shapes:
    """LowFive beats hand-written MPI at small scale, loses slightly at 16K."""

    def test_lowfive_faster_small_scale(self):
        for P in (4, 16, 64):
            nprod, ncons = split(P)
            lf = lowfive_memory_time(nprod, ncons, WL)
            mpi = pure_mpi_time(nprod, ncons, WL)
            assert lf < mpi
        # 10-40% band at the smallest scale.
        lf4, mpi4 = lowfive_memory_time(*split(4), WL), pure_mpi_time(*split(4), WL)
        assert 1.10 < mpi4 / lf4 < 1.45

    def test_lowfive_slightly_slower_at_16k(self):
        lf = lowfive_memory_time(*split(16384), WL)
        mpi = pure_mpi_time(*split(16384), WL)
        assert 1.0 < lf / mpi < 1.25


class TestFig8Shapes:
    """DataSpaces is consistently faster; ~0.5s gap at 4K on Haswell."""

    def test_dataspaces_consistently_faster(self):
        for P in (4, 16, 64, 256, 1024, 4096):
            nprod, ncons = split(P)
            lf = lowfive_memory_time(nprod, ncons, WL, CORI_HASWELL)
            ds = dataspaces_time(nprod, ncons, WL, CORI_HASWELL)
            assert ds < lf

    def test_gap_at_4k_about_half_second(self):
        nprod, ncons = split(4096)
        gap = lowfive_memory_time(nprod, ncons, WL, CORI_HASWELL) - \
            dataspaces_time(nprod, ncons, WL, CORI_HASWELL)
        assert 0.3 < gap < 0.8

    def test_curves_roughly_parallel(self):
        r = [
            lowfive_memory_time(*split(P), WL, CORI_HASWELL)
            / dataspaces_time(*split(P), WL, CORI_HASWELL)
            for P in (16, 256, 4096)
        ]
        assert max(r) / min(r) < 1.5

    def test_haswell_faster_than_knl(self):
        for P in (16, 1024):
            nprod, ncons = split(P)
            assert lowfive_memory_time(nprod, ncons, WL, CORI_HASWELL) < \
                lowfive_memory_time(nprod, ncons, WL, THETA_KNL)


class TestFig9Shapes:
    """Bredala: particles fine, grid (bbox policy) blows up at scale."""

    def test_lowfive_much_faster_overall(self):
        for P in (1024, 4096):
            nprod, ncons = split(P)
            br = bredala_times(nprod, ncons, WL)
            lf = lowfive_memory_time(nprod, ncons, WL)
            assert br["total"] > 5 * lf

    def test_grid_dominates_blowup(self):
        nprod, ncons = split(4096)
        br = bredala_times(nprod, ncons, WL)
        assert br["grid"] > 20 * br["particles"]

    def test_particles_scale_reasonably(self):
        p4 = bredala_times(*split(4), WL)["particles"]
        p4k = bredala_times(*split(4096), WL)["particles"]
        assert p4k < 5 * p4

    def test_grid_blowup_factor(self):
        g4 = bredala_times(*split(4), WL)["grid"]
        g4k = bredala_times(*split(4096), WL)["grid"]
        assert g4k / g4 > 20  # paper: ~2s -> ~200s


class TestFig11Shapes:
    """10x data on Haswell: LowFive ~= MPI, ~20-60% slower than DS."""

    WL10 = SyntheticWorkload(grid_points_per_proc=10**7,
                             particles_per_proc=10**7)

    def test_lowfive_matches_mpi(self):
        for P in (4, 256, 4096):
            nprod, ncons = self.WL10.split_procs(P)
            lf = lowfive_memory_time(nprod, ncons, self.WL10, CORI_HASWELL)
            mpi = pure_mpi_time(nprod, ncons, self.WL10, CORI_HASWELL)
            assert 0.85 < lf / mpi < 1.15

    def test_dataspaces_still_ahead_but_close(self):
        nprod, ncons = self.WL10.split_procs(4096)
        lf = lowfive_memory_time(nprod, ncons, self.WL10, CORI_HASWELL)
        ds = dataspaces_time(nprod, ncons, self.WL10, CORI_HASWELL)
        assert 1.1 < lf / ds < 2.0

    def test_trends_stable_at_10x(self):
        """The point of the experiment: same winners as the small runs."""
        nprod, ncons = self.WL10.split_procs(1024)
        ds = dataspaces_time(nprod, ncons, self.WL10, CORI_HASWELL)
        lf = lowfive_memory_time(nprod, ncons, self.WL10, CORI_HASWELL)
        mpi = pure_mpi_time(nprod, ncons, self.WL10, CORI_HASWELL)
        assert ds < lf and abs(lf - mpi) / mpi < 0.2


class TestTable2Shapes:
    def test_hdf5_dnf_at_2048(self):
        rows = {r["grid"]: r for r in table2_rows()}
        assert rows[2048]["hdf5_write"] is None
        assert rows[1024]["hdf5_write"] is not None

    def test_lowfive_write_stays_flat(self):
        rows = {r["grid"]: r for r in table2_rows()}
        assert rows[2048]["lowfive_write"] < 4 * rows[256]["lowfive_write"]

    def test_speedup_grows_with_grid(self):
        rows = table2_rows(grid_sizes=(256, 512, 1024))
        sp = [r["speedup_vs_hdf5"] for r in rows]
        assert sp[0] < sp[1] < sp[2]
        assert sp[2] > 100  # paper: 320x at 1024^3

    def test_plotfiles_beat_hdf5_but_lose_to_lowfive(self):
        for r in table2_rows(grid_sizes=(512, 1024)):
            assert r["plotfile_write"] < r["hdf5_write"]
            assert r["plotfile_write"] > r["lowfive_write"]
        r2048 = nyx_reeber_times(2048)
        assert r2048["speedup_vs_plotfiles"] > 10  # paper: 20x

    def test_hdf5_read_much_cheaper_than_write(self):
        for r in table2_rows(grid_sizes=(512, 1024)):
            assert r["hdf5_read"] < 0.1 * r["hdf5_write"]


class TestExecutedVsModel:
    """The analytic model must agree with executed simmpi runs."""

    @pytest.mark.parametrize("nprod,ncons", [(3, 1), (6, 2), (12, 4)])
    def test_lowfive_memory_agreement(self, nprod, ncons):
        from tests.lowfive.test_dist_vol import run_producer_consumer

        wl = SyntheticWorkload(grid_points_per_proc=8000,
                               particles_per_proc=8000)
        res = run_producer_consumer(
            nprod, ncons, grid_shape=wl.grid_shape(nprod),
            n_particles=wl.total_particles(nprod),
        )
        model = lowfive_memory_time(nprod, ncons, wl)
        assert model == pytest.approx(res.vtime, rel=0.35)

    @pytest.mark.parametrize("nprod,ncons", [(3, 1), (6, 4)])
    def test_pure_mpi_agreement(self, nprod, ncons):
        from repro.baselines import pure_mpi_consumer, pure_mpi_producer
        from repro.synth import (
            consumer_grid_selection,
            consumer_particle_selection,
            grid_values,
            particle_values,
            producer_grid_selection,
            producer_particle_selection,
        )
        from repro.workflow import Workflow

        wl = SyntheticWorkload(grid_points_per_proc=8000,
                               particles_per_proc=8000)
        shape = wl.grid_shape(nprod)
        npart = wl.total_particles(nprod)

        def producer(ctx):
            inter = ctx.intercomm("consumer")
            gsel = producer_grid_selection(shape, ctx.rank, ctx.size)
            pure_mpi_producer(inter, gsel, grid_values(gsel, shape), [
                consumer_grid_selection(shape, r, ncons)
                for r in range(ncons)
            ], tag=901, epoch_start=True)
            psel = producer_particle_selection(npart, ctx.rank, ctx.size)
            pure_mpi_producer(inter, psel, particle_values(psel), [
                consumer_particle_selection(npart, r, ncons)
                for r in range(ncons)
            ], tag=902, epoch_start=False)

        def consumer(ctx):
            inter = ctx.intercomm("producer")
            gsel = consumer_grid_selection(shape, ctx.rank, ctx.size)
            pure_mpi_consumer(inter, gsel, np.uint64, tag=901,
                               epoch_end=False)
            psel = consumer_particle_selection(npart, ctx.rank, ctx.size)
            pure_mpi_consumer(inter, psel, np.float32, tag=902,
                               epoch_end=True)

        wf = Workflow()
        wf.add_task("producer", nprod, producer)
        wf.add_task("consumer", ncons, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run()
        model = pure_mpi_time(nprod, ncons, wl)
        assert model == pytest.approx(res.vtime, rel=0.35)

    @pytest.mark.parametrize("nprod,ncons", [(3, 1), (6, 2)])
    def test_dataspaces_agreement(self, nprod, ncons):
        from repro.bench import run_dataspaces

        wl = SyntheticWorkload(grid_points_per_proc=8000,
                               particles_per_proc=8000)
        res = run_dataspaces(nprod, ncons, wl, nservers=2)
        model = dataspaces_time(nprod, ncons, wl, THETA_KNL, nservers=2)
        assert model == pytest.approx(res.vtime, rel=0.5)

    @pytest.mark.parametrize("nprod,ncons", [(3, 1), (6, 2)])
    def test_bredala_agreement(self, nprod, ncons):
        from repro.bench import run_bredala

        wl = SyntheticWorkload(grid_points_per_proc=8000,
                               particles_per_proc=8000)
        res = run_bredala(nprod, ncons, wl)
        model = bredala_times(nprod, ncons, wl, THETA_KNL)["total"]
        assert model == pytest.approx(res.vtime, rel=0.5)
