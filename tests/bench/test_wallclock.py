"""Wall-clock perf harness: schema, drift gate, speedup accounting."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))),
    "benchmarks", "bench_wallclock.py",
)


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("bench_wallclock",
                                                  _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def runs(harness):
    return harness.run_suite(elems=2000, nprocs=4, stress_ranks=32,
                             repeats=1)


class TestSuite:
    def test_covers_fig_drivers_and_stress(self, runs):
        names = {r["workload"] for r in runs}
        assert names == {
            "fig5/lowfive_memory/P4", "fig5/lowfive_file/P4",
            "fig7/pure_mpi/P4", "stress/matching/R32",
        }

    def test_records_wall_and_virtual_fields(self, runs):
        for run in runs:
            assert run["wall_seconds"] > 0
            assert run["vtime"] > 0
            assert run["messages"] > 0

    def test_stress_workload_is_deterministic(self, harness):
        from repro.simmpi import run_world

        a = run_world(16, harness.stress_matching, timeout=60.0)
        b = run_world(16, harness.stress_matching, timeout=60.0)
        assert a.vtime == b.vtime  # noqa: ANL004 - exact determinism is the contract
        assert a.messages == b.messages == 15 * 4 * 8
        assert a.bytes_sent == b.bytes_sent


class TestDriftGate:
    def test_identical_reference_passes(self, harness, runs):
        ref = {"runs": [dict(r) for r in runs]}
        problems, compared = harness.compare(
            [dict(r) for r in runs], ref)
        assert compared and problems == []

    def test_vtime_drift_detected(self, harness, runs):
        ref = {"runs": [dict(r) for r in runs]}
        ref["runs"][0]["vtime"] *= 1.000001
        problems, _ = harness.compare([dict(r) for r in runs], ref)
        assert len(problems) == 1 and "vtime drifted" in problems[0]

    def test_message_count_drift_detected(self, harness, runs):
        ref = {"runs": [dict(r) for r in runs]}
        ref["runs"][-1]["messages"] += 1
        problems, _ = harness.compare([dict(r) for r in runs], ref)
        assert any("messages drifted" in p for p in problems)

    def test_speedup_computed_against_reference(self, harness, runs):
        mine = [dict(r) for r in runs]
        ref = {"runs": [dict(r) for r in runs]}
        for r in ref["runs"]:
            r["wall_seconds"] = r["wall_seconds"] * 4
        harness.compare(mine, ref)
        for r in mine:
            assert r["speedup_vs_reference"] == pytest.approx(4.0)


class TestCli:
    def test_writes_schema_versioned_document(self, harness, tmp_path):
        out = tmp_path / "wallclock.json"
        rc = harness.main([
            "--output", str(out), "--elems", "2000",
            "--stress-ranks", "16", "--ref", str(tmp_path / "missing"),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == harness.SCHEMA_VERSION == 1
        assert len(doc["runs"]) == 5  # 4 workloads + obs self-accounting
        obs = [r for r in doc["runs"]
               if r["workload"].startswith("obs/overhead/")]
        assert len(obs) == 1
        assert obs[0]["wall_obs_off"] > 0
        assert "obs_overhead_frac" in obs[0]

    def test_check_ref_fails_on_drift(self, harness, tmp_path):
        out = tmp_path / "first.json"
        rc = harness.main([
            "--output", str(out), "--elems", "2000",
            "--stress-ranks", "16", "--ref", str(tmp_path / "missing"),
        ])
        assert rc == 0
        ref = json.loads(out.read_text())
        ref["runs"][0]["vtime"] += 1.0
        ref_path = tmp_path / "ref.json"
        ref_path.write_text(json.dumps(ref))
        rc = harness.main([
            "--output", str(tmp_path / "second.json"),
            "--elems", "2000", "--stress-ranks", "16",
            "--ref", str(ref_path), "--check-ref",
        ])
        assert rc == 1

    def test_check_ref_passes_on_identical_virtual_results(
            self, harness, tmp_path):
        out = tmp_path / "first.json"
        harness.main([
            "--output", str(out), "--elems", "2000",
            "--stress-ranks", "16", "--ref", str(tmp_path / "missing"),
        ])
        rc = harness.main([
            "--output", str(tmp_path / "second.json"),
            "--elems", "2000", "--stress-ranks", "16",
            "--ref", str(out), "--check-ref",
        ])
        assert rc == 0

    def test_committed_reference_is_valid(self, harness):
        with open(harness.DEFAULT_REF) as f:
            ref = json.load(f)
        assert ref["schema_version"] == harness.SCHEMA_VERSION
        assert {r["workload"] for r in ref["runs"]} == {
            "fig5/lowfive_memory/P4", "fig5/lowfive_file/P4",
            "fig7/pure_mpi/P4", "stress/matching/R256",
        }
        for r in ref["runs"]:
            assert r["wall_seconds"] > 0
            for fieldname in harness.VIRTUAL_FIELDS:
                assert fieldname in r
