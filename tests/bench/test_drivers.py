"""Executed benchmark-driver tests at tiny scale.

The benchmark suite exercises these at larger sizes; here we pin the
driver contract (validation, accounting fields) quickly.
"""

import pytest

from repro.bench import (
    ExecutedResult,
    run_bredala,
    run_dataspaces,
    run_lowfive_file,
    run_lowfive_memory,
    run_pure_hdf5,
    run_pure_mpi,
)
from repro.perfmodel import CORI_HASWELL
from repro.synth import SyntheticWorkload

WL = SyntheticWorkload(grid_points_per_proc=2000, particles_per_proc=2000)

DRIVERS = [
    run_lowfive_memory,
    run_lowfive_file,
    run_pure_hdf5,
    run_pure_mpi,
    run_dataspaces,
    run_bredala,
]


@pytest.mark.parametrize("driver", DRIVERS, ids=lambda d: d.__name__)
def test_driver_runs_and_validates(driver):
    res = driver(3, 2, WL)
    assert isinstance(res, ExecutedResult)
    assert res.validated
    assert res.nprod == 3 and res.ncons == 2
    assert res.vtime > 0
    assert res.messages > 0


@pytest.mark.parametrize("driver", [run_lowfive_memory, run_pure_mpi,
                                    run_dataspaces],
                         ids=lambda d: d.__name__)
def test_driver_accepts_machine(driver):
    res = driver(2, 1, WL, CORI_HASWELL)
    assert res.validated


def test_uneven_shapes():
    assert run_lowfive_memory(5, 3, WL).validated
    assert run_pure_mpi(1, 4, WL).validated


def test_in_situ_moves_fewer_or_equal_bytes_than_file():
    mem = run_lowfive_memory(3, 1, WL)
    fil = run_lowfive_file(3, 1, WL)
    # File mode's bytes_sent counts only the control messages; the data
    # goes through the PFS instead, so its network traffic is smaller.
    assert fil.bytes_sent < mem.bytes_sent
    assert fil.vtime > mem.vtime
