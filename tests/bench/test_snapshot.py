"""Benchmark snapshot: schema, determinism hooks, health checks."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))),
    "benchmarks", "bench_snapshot.py",
)


@pytest.fixture(scope="module")
def snap():
    spec = importlib.util.spec_from_file_location("bench_snapshot",
                                                  _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def doc(snap):
    return snap.snapshot(elems=2000, scales=[4])


class TestSchema:
    def test_versioned_envelope(self, snap, doc):
        assert doc["schema_version"] == snap.SCHEMA_VERSION == 1
        assert doc["params"]["elems_per_proc"] == 2000
        assert doc["params"]["scales"] == [4]

    def test_one_run_per_configured_driver(self, snap, doc):
        assert len(doc["runs"]) == len(snap.RUNS)
        assert {(r["figure"], r["transport"]) for r in doc["runs"]} == \
            {(f, t) for f, t, _ in snap.RUNS}

    def test_runs_carry_attribution(self, doc):
        for run in doc["runs"]:
            a = run["attribution"]
            assert a["conservation_ok"] is True
            assert abs(a["critpath_residual"]) <= 1e-9
            assert set(a["critpath"]) == \
                {"simmpi", "lowfive", "pfs", "compute", "wait"}
            assert run["vtime"] > 0 and run["validated"]

    def test_json_serializable_without_timestamps(self, doc):
        json.dumps(doc, sort_keys=True)

        def keys(obj):
            if isinstance(obj, dict):
                for k, v in obj.items():
                    yield k
                    yield from keys(v)
            elif isinstance(obj, list):
                for v in obj:
                    yield from keys(v)

        # Deterministic output: no wall-clock fields anywhere.
        banned = {"timestamp", "date", "created", "generated_at"}
        assert not banned & set(keys(doc))

    def test_check_flags_violations(self, snap, doc):
        assert snap.check(doc) == []
        import copy

        broken = copy.deepcopy(doc)
        broken["runs"][0]["attribution"]["conservation_ok"] = False
        broken["runs"][1]["validated"] = False
        problems = snap.check(broken)
        assert len(problems) == 2
        assert any("conservation" in p for p in problems)


class TestMain:
    def test_writes_file_and_exits_zero(self, snap, tmp_path, capsys):
        out = tmp_path / "BENCH_snapshot.json"
        rc = snap.main(["--output", str(out), "--elems", "2000",
                        "--scales", "4"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == 1
        assert "wrote" in capsys.readouterr().out
