"""Benchmark-harness formatting/plotting tests."""

import os

import pytest

from repro.bench import ascii_loglog, format_series_table, format_table
from repro.bench.tables import _fmt, write_result


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "x" in lines[4]  # None -> x (the paper's DNF marker)

    def test_number_formats(self):
        assert _fmt(None) == "x"
        assert _fmt(0.0) == "0"
        assert _fmt(123.456) == "123"
        assert _fmt(1.234) == "1.23"
        assert _fmt(0.01234) == "0.012"
        assert _fmt("abc") == "abc"

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text


class TestSeriesTable:
    def test_series_layout(self):
        text = format_series_table(
            [4, 16], {"A": [1.0, 2.0], "B": [3.0, None]}
        )
        assert "#procs" in text
        assert "A (s)" in text and "B (s)" in text
        assert "x" in text


class TestAsciiPlot:
    PROCS = [4, 16, 64, 256]

    def test_plot_contains_series_letters_and_legend(self):
        plot = ascii_loglog(
            self.PROCS, {"up": [1, 2, 4, 8], "down": [8, 4, 2, 1]},
            title="demo",
        )
        assert plot.startswith("demo")
        assert "A = up" in plot and "B = down" in plot
        assert "(#procs)" in plot

    def test_monotone_series_renders_monotone(self):
        plot = ascii_loglog(self.PROCS, {"up": [1, 10, 100, 1000]})
        rows = [l for l in plot.splitlines() if "|" in l]
        cols = []
        for r, line in enumerate(rows):
            body = line.split("|", 1)[1]
            for c, ch in enumerate(body):
                if ch == "A":
                    cols.append((c, r))
        cols.sort()
        # Higher x -> higher value -> smaller row index (top of plot).
        assert all(b[1] < a[1] for a, b in zip(cols, cols[1:]))

    def test_missing_points_skipped(self):
        plot = ascii_loglog(self.PROCS, {"s": [1, None, None, 4]})
        assert plot.count("A") >= 2  # legend + 2 points

    def test_overlap_marker(self):
        plot = ascii_loglog(self.PROCS, {"a": [1, 1, 1, 1],
                                         "b": [1, 1, 1, 1]})
        assert "*" in plot

    def test_k_axis_labels(self):
        plot = ascii_loglog([1024, 4096], {"s": [1, 2]})
        assert "1K" in plot and "4K" in plot

    def test_all_missing_raises(self):
        with pytest.raises(ValueError):
            ascii_loglog([4], {"s": [None]})


class TestWriteResult:
    def test_writes_under_results_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "res"))
        path = write_result("t.txt", "hello\n")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"
        assert "hello" in capsys.readouterr().out
