"""Halo-finder tests: serial reference and distributed merge."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cosmo import find_halos_distributed, find_halos_serial
from repro.cosmo.reeber import _UnionFind
from repro.diy import Bounds, RegularDecomposer
from repro.simmpi import run_world


class TestUnionFind:
    def test_basic(self):
        uf = _UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        assert uf.find("a") == uf.find("b")
        assert uf.find("c") != uf.find("a")
        uf.union("b", "c")
        assert uf.find("d") == uf.find("a")

    def test_deterministic_roots(self):
        uf = _UnionFind()
        uf.union((1, 5), (0, 2))
        assert uf.find((1, 5)) == (0, 2)


class TestSerial:
    def test_single_halo(self):
        d = np.zeros((8, 8, 8))
        d[2:4, 2:4, 2:4] = 5.0
        halos = find_halos_serial(d, threshold=1.0)
        assert len(halos) == 1
        assert halos[0].n_cells == 8
        assert halos[0].mass == 40.0
        assert halos[0].peak_density == 5.0

    def test_two_halos_sorted_by_mass(self):
        d = np.zeros((10, 10))
        d[0:2, 0:2] = 2.0   # mass 8
        d[5:9, 5:9] = 3.0   # mass 48
        halos = find_halos_serial(d, threshold=1.0)
        assert [h.mass for h in halos] == [48.0, 8.0]

    def test_no_halos(self):
        assert find_halos_serial(np.zeros((4, 4)), 0.5) == []

    def test_diagonal_not_connected(self):
        d = np.zeros((4, 4))
        d[0, 0] = 2.0
        d[1, 1] = 2.0
        halos = find_halos_serial(d, 1.0)
        assert len(halos) == 2

    def test_threshold_is_strict(self):
        d = np.full((3, 3), 1.0)
        assert find_halos_serial(d, 1.0) == []
        assert len(find_halos_serial(d, 0.99)) == 1


def run_distributed(density, nranks, threshold):
    """Split a global density grid over ranks and find halos."""
    shape = density.shape
    dec = RegularDecomposer(shape, nranks)

    def main(comm):
        if comm.rank < dec.ngrid_blocks:
            b = dec.block_bounds(comm.rank)
        else:
            b = Bounds([0] * len(shape), [0] * len(shape))
        block = density[tuple(slice(l, h) for l, h in zip(b.min, b.max))]
        return find_halos_distributed(comm, block, b, shape, threshold)

    res = run_world(nranks, main)
    # Every rank must agree on the global result.
    first = [h.round() for h in res.returns[0]]
    for r in res.returns[1:]:
        assert [h.round() for h in r] == first
    return first


class TestDistributed:
    def test_matches_serial_single_block_halo(self):
        d = np.zeros((8, 8))
        d[1:3, 1:3] = 4.0
        got = run_distributed(d, 4, 1.0)
        want = [h.round() for h in find_halos_serial(d, 1.0)]
        assert got == want

    def test_halo_spanning_block_boundary(self):
        d = np.zeros((8, 8))
        d[3:6, 3:6] = 2.0  # crosses the 2x2 block split at 4
        got = run_distributed(d, 4, 1.0)
        want = [h.round() for h in find_halos_serial(d, 1.0)]
        assert got == want
        assert len(got) == 1
        assert got[0].n_cells == 9

    def test_halo_spanning_many_blocks_3d(self):
        d = np.zeros((8, 8, 8))
        d[2:7, 2:7, 2:7] = 1.5
        d[4, 4, 4] = 9.0
        got = run_distributed(d, 8, 1.0)
        want = [h.round() for h in find_halos_serial(d, 1.0)]
        assert got == want
        assert got[0].peak_cell == (4, 4, 4)

    def test_multiple_disjoint_halos(self):
        rng = np.random.default_rng(7)
        d = np.zeros((12, 12))
        d[0:2, 0:2] = 2.0
        d[10:12, 10:12] = 3.0
        d[5:7, 0:2] = 4.0
        got = run_distributed(d, 6, 1.0)
        want = [h.round() for h in find_halos_serial(d, 1.0)]
        assert got == want
        assert len(got) == 3

    def test_empty_grid(self):
        assert run_distributed(np.zeros((6, 6)), 4, 0.5) == []

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 6))
    def test_prop_distributed_equals_serial(self, seed, nranks):
        rng = np.random.default_rng(seed)
        d = (rng.random((10, 10)) > 0.7).astype(float) * \
            rng.uniform(1.5, 5.0, (10, 10))
        got = run_distributed(d, nranks, 1.0)
        want = [h.round() for h in find_halos_serial(d, 1.0)]
        assert got == want
