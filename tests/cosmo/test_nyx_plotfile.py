"""Nyx proxy + plotfile format tests, and the full Nyx->Reeber coupling."""

import numpy as np
import pytest

import repro.h5 as h5
from repro.cosmo import NyxProxy, write_snapshot_h5
from repro.cosmo.nyx import DENSITY_PATH
from repro.cosmo.plotfile import (
    read_plotfile_box,
    read_plotfile_header,
    write_plotfile,
)
from repro.cosmo.reeber import find_halos_distributed, find_halos_serial
from repro.diy import Bounds, RegularDecomposer
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.simmpi import run_world
from repro.workflow import Workflow


class TestNyxProxy:
    def test_deterministic(self):
        a = NyxProxy(16, None, seed=1)
        b = NyxProxy(16, None, seed=1)
        da = a.advance()
        db = b.advance()
        for bid in da.local_box_ids:
            np.testing.assert_array_equal(da.fab(bid), db.fab(bid))

    def test_density_has_structure(self):
        sim = NyxProxy(16, None, seed=3)
        d = sim.advance()
        assert d.local_max() > 2.0  # clustered, not uniform
        assert d.local_min() == 0.0

    def test_mass_conserved_across_steps(self):
        sim = NyxProxy(16, None, seed=5)
        s1 = sim.advance().local_sum()
        s2 = sim.advance().local_sum()
        assert s1 == pytest.approx(s2, rel=1e-9)

    def test_snapshot_h5_roundtrip_serial(self):
        store = PFSStore()
        sim = NyxProxy(16, None, seed=2, max_grid_size=8)
        density = sim.advance()
        write_snapshot_h5("plt0.h5", density, None, NativeVOL(store), step=0)
        with h5.File("plt0.h5", "r", vol=NativeVOL(store)) as f:
            grid = f[DENSITY_PATH].read()
            assert grid.shape == (16, 16, 16)
            assert f.attrs["step"] == 0
            for bid in density.local_box_ids:
                box = density.boxarray[bid]
                sl = tuple(slice(l, h) for l, h in zip(box.min, box.max))
                np.testing.assert_array_equal(grid[sl], density.fab(bid))

    def test_parallel_snapshot(self):
        store = PFSStore()
        vol = NativeVOL(store)

        def main(comm):
            sim = NyxProxy(16, comm, seed=9, max_grid_size=8)
            density = sim.advance()
            write_snapshot_h5("plt.h5", density, comm, vol, step=1)
            return density.local_sum()

        res = run_world(4, main)
        with h5.File("plt.h5", "r", vol=NativeVOL(store)) as f:
            grid = f[DENSITY_PATH].read()
        assert grid.sum() == pytest.approx(sum(res.returns), rel=1e-9)


class TestPlotfile:
    def _write(self, nranks=4, n=16, nfiles=2):
        store = PFSStore()

        def main(comm):
            sim = NyxProxy(n, comm, seed=4, max_grid_size=8)
            density = sim.advance()
            write_plotfile(store, "plt00000", density, comm, step=0,
                           nfiles=nfiles)
            return density

        res = run_world(nranks, main)
        return store, res.returns

    def test_header_contents(self):
        store, fabs = self._write()
        hdr = read_plotfile_header(store, "plt00000")
        assert hdr["domain"] == (16, 16, 16)
        assert hdr["names"] == ["baryon_density"]
        assert hdr["step"] == 0
        assert hdr["nfiles"] == 2
        assert len(hdr["boxes"]) == 8  # 16^3 / 8^3

    def test_data_roundtrip(self):
        store, fabs = self._write()
        hdr = read_plotfile_header(store, "plt00000")
        for rank_density in fabs:
            for bid in rank_density.local_box_ids:
                got = read_plotfile_box(store, "plt00000", hdr, bid)
                np.testing.assert_array_equal(got, rank_density.fab(bid))

    def test_multiple_binary_files_created(self):
        store, _ = self._write(nfiles=2)
        names = store.listdir()
        assert "plt00000/Level_0/Cell_D_00000" in names
        assert "plt00000/Level_0/Cell_D_00001" in names


class TestNyxReeberCoupling:
    def test_in_situ_halo_pipeline(self):
        """The paper's use case end-to-end at test scale: Nyx writes a
        snapshot via unchanged h5 calls through LowFive; Reeber reads it
        in situ and finds the same halos as a serial reference."""
        n = 16
        threshold = 2.0
        serial_sim = NyxProxy(n, None, seed=11, max_grid_size=8)
        serial_density = serial_sim.advance()
        full = np.zeros((n, n, n))
        for bid in serial_density.local_box_ids:
            box = serial_density.boxarray[bid]
            sl = tuple(slice(l, h) for l, h in zip(box.min, box.max))
            full[sl] = serial_density.fab(bid)
        expected = [h.round() for h in find_halos_serial(full, threshold)]
        assert expected, "seed must produce at least one halo"

        def nyx_task(ctx):
            vol = ctx.singleton("vol", lambda: self._producer_vol(ctx))
            sim = NyxProxy(n, ctx.comm, seed=11, max_grid_size=8)
            density = sim.advance()
            write_snapshot_h5("plt.h5", density, ctx.comm, vol, step=0)

        def reeber_task(ctx):
            vol = ctx.singleton("vol", lambda: self._consumer_vol(ctx))
            f = h5.File("plt.h5", "r", comm=ctx.comm, vol=vol)
            dset = f[DENSITY_PATH]
            dec = RegularDecomposer(dset.shape, ctx.size)
            if ctx.rank < dec.ngrid_blocks:
                b = dec.block_bounds(ctx.rank)
            else:
                b = Bounds([0, 0, 0], [0, 0, 0])
            block = dset.read(b.to_selection(dset.shape))
            f.close()
            halos = find_halos_distributed(
                ctx.comm, np.asarray(block), b, dset.shape, threshold
            )
            return [h.round() for h in halos]

        wf = Workflow()
        wf.add_task("nyx", 4, nyx_task)
        wf.add_task("reeber", 2, reeber_task)
        wf.add_link("nyx", "reeber")
        res = wf.run()
        for halos in res.returns["reeber"]:
            assert halos == expected

    @staticmethod
    def _producer_vol(ctx):
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
        vol.set_memory("plt.h5")
        vol.serve_on_close("plt.h5", ctx.intercomm("reeber"))
        return vol

    @staticmethod
    def _consumer_vol(ctx):
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
        vol.set_memory("plt.h5")
        vol.set_consumer("plt.h5", ctx.intercomm("nyx"))
        return vol
