"""AMReX-like substrate tests."""

import numpy as np
import pytest

from repro.cosmo import BoxArray, DistributionMapping, MultiFab


def test_boxarray_covers_domain():
    ba = BoxArray((40, 40, 40), max_grid_size=16)
    cover = np.zeros((40, 40, 40), dtype=int)
    for box in ba:
        cover[tuple(slice(l, h) for l, h in zip(box.min, box.max))] += 1
    assert (cover == 1).all()
    assert ba.total_cells == 40**3


def test_boxarray_box_sizes_bounded():
    ba = BoxArray((100,), max_grid_size=32)
    assert len(ba) == 4
    assert [b.shape[0] for b in ba] == [32, 32, 32, 4]


def test_boxarray_exact_division():
    ba = BoxArray((64, 64), max_grid_size=32)
    assert len(ba) == 4
    assert all(b.shape == (32, 32) for b in ba)


def test_boxarray_validation():
    with pytest.raises(ValueError):
        BoxArray((0, 4))
    with pytest.raises(ValueError):
        BoxArray((4,), max_grid_size=0)


def test_distribution_mapping_round_robin():
    ba = BoxArray((64,), max_grid_size=8)  # 8 boxes
    dm = DistributionMapping(ba, 3)
    assert dm.owner(0) == 0 and dm.owner(1) == 1 and dm.owner(3) == 0
    assert dm.local_boxes(0) == [0, 3, 6]
    all_boxes = sorted(
        b for r in range(3) for b in dm.local_boxes(r)
    )
    assert all_boxes == list(range(8))
    with pytest.raises(ValueError):
        DistributionMapping(ba, 0)


def test_multifab_local_storage():
    ba = BoxArray((16, 16), max_grid_size=8)  # 4 boxes
    dm = DistributionMapping(ba, 2)
    mf = MultiFab(ba, dm, rank=0)
    assert mf.local_box_ids == [0, 2]
    assert mf.fab(0).shape == (8, 8)
    assert mf.local_cells() == 128


def test_multifab_ncomp():
    ba = BoxArray((8,), max_grid_size=8)
    dm = DistributionMapping(ba, 1)
    mf = MultiFab(ba, dm, rank=0, ncomp=3)
    assert mf.fab(0).shape == (8, 3)


def test_multifab_reductions():
    ba = BoxArray((4, 4), max_grid_size=4)
    dm = DistributionMapping(ba, 1)
    mf = MultiFab(ba, dm, rank=0)
    mf.set_val(2.0)
    assert mf.local_sum() == 32.0
    assert mf.local_min() == 2.0
    assert mf.local_max() == 2.0
