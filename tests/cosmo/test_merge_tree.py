"""Merge-tree tests (Reeber's core data structure)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import ndimage

from repro.cosmo.merge_tree import MergeTree, TreeNode, build_merge_tree, halos_at
from repro.cosmo.reeber import find_halos_serial


class TestBasics:
    def test_single_peak(self):
        f = np.zeros((5, 5))
        f[2, 2] = 3.0
        tree = build_merge_tree(f)
        # One real maximum above the flat background.
        tops = [n for n in tree.nodes if n.birth == 3.0]
        assert len(tops) == 1
        assert tops[0].cell == (2, 2)
        assert tops[0].death == float("-inf")
        assert tops[0].persistence == float("inf")

    def test_two_peaks_one_saddle(self):
        f = np.array([5.0, 1.0, 4.0])
        tree = build_merge_tree(f)
        peaks = sorted((n.birth, n.death) for n in tree.nodes)
        # Max at 5 is the root; max at 4 dies at the saddle value 1.
        assert (4.0, 1.0) in peaks
        assert (5.0, float("-inf")) in peaks
        assert tree.n_components_at(2.0) == 2
        assert tree.n_components_at(4.5) == 1
        assert tree.n_components_at(5.5) == 0

    def test_persistence_values(self):
        f = np.array([5.0, 1.0, 4.0])
        tree = build_merge_tree(f)
        small = [n for n in tree.nodes if n.birth == 4.0][0]
        assert small.persistence == pytest.approx(3.0)

    def test_monotone_ramp_single_component(self):
        f = np.arange(10, dtype=float)
        tree = build_merge_tree(f)
        # Only the global max is a maximum.
        assert len([n for n in tree.nodes if n.death == float("-inf")]) == 1
        for t in (-0.5, 2.5, 8.5):
            assert tree.n_components_at(t) == 1
        assert tree.n_components_at(9.0) == 0

    def test_plateau_ties_deterministic(self):
        f = np.ones((3, 3))
        t1 = build_merge_tree(f)
        t2 = build_merge_tree(f)
        assert [(n.cell, n.birth) for n in t1.nodes] == \
            [(n.cell, n.birth) for n in t2.nodes]
        # A flat field has exactly one component above any t < 1.
        assert t1.n_components_at(0.5) == 1


class TestAgainstLabeling:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.floats(0.1, 0.9))
    def test_prop_component_count_matches_ndimage(self, seed, q):
        rng = np.random.default_rng(seed)
        f = rng.random((8, 8))
        t = float(np.quantile(f, q))
        tree = build_merge_tree(f)
        labels, ncomp = ndimage.label(f > t)
        assert tree.n_components_at(t) == ncomp

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_prop_3d_component_count(self, seed):
        rng = np.random.default_rng(seed)
        f = rng.random((5, 5, 5))
        t = 0.6
        tree = build_merge_tree(f)
        _, ncomp = ndimage.label(f > t)
        assert tree.n_components_at(t) == ncomp

    def test_maxima_at_matches_halo_count(self):
        rng = np.random.default_rng(3)
        f = rng.random((10, 10)) * (rng.random((10, 10)) > 0.6)
        t = 0.3
        halos = find_halos_serial(f, t)
        tree = build_merge_tree(f)
        assert len(tree.maxima_at(t)) == len(halos)
        # Representatives are the component peaks.
        tree_peaks = sorted(n.birth for n in tree.maxima_at(t))
        halo_peaks = sorted(h.peak_density for h in halos)
        np.testing.assert_allclose(tree_peaks, halo_peaks)


class TestPersistenceFilter:
    def test_filter_prunes_shallow_component(self):
        # Two components above t=1: a tall one (peak 10) and a shallow
        # one (peak 1.4). The persistence filter drops the shallow one.
        f = np.zeros(9)
        f[1] = 10.0
        f[7] = 1.4
        assert len(halos_at(f, 1.0)) == 2
        assert len(halos_at(f, 1.0, min_persistence=2.0)) == 1

    def test_root_survives_any_filter(self):
        f = np.array([3.0, 0.0, 2.0])
        kept = halos_at(f, -0.5, min_persistence=1e9)
        assert len(kept) == 1
        assert kept[0].birth == 3.0

    def test_nested_merges(self):
        # Three peaks 9 > 7 > 5 with saddles 2 and 4.
        f = np.array([9.0, 2.0, 7.0, 4.0, 5.0])
        tree = build_merge_tree(f)
        pairs = sorted(tree.persistence_pairs())
        assert (5.0, 4.0) in pairs
        assert (7.0, 2.0) in pairs
        assert tree.n_components_at(4.5) == 3  # all three peaks separate
        assert tree.n_components_at(3.0) == 2  # 5-peak merged via saddle 4
        assert tree.n_components_at(1.0) == 1  # everything connected


class TestTreeNode:
    def test_node_fields(self):
        n = TreeNode((1, 2), 5.0, 3.0)
        assert n.persistence == 2.0

    def test_len(self):
        f = np.array([1.0, 0.0, 1.0])
        assert len(build_merge_tree(f)) == 2
