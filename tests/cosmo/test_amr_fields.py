"""Multi-variable/multi-level AMR snapshot tests.

The headline assertion reproduces the paper's introduction claim: with
LowFive's metadata-aware transport, an analysis that consumes one
variable at one resolution only moves that dataset's bytes -- the other
variables "never actually have to be written, i.e., sent".
"""

import numpy as np
import pytest

import repro.h5 as h5
from repro.cosmo import NyxProxy
from repro.cosmo.amr_fields import (
    REFINE_RATIO,
    derive_fields,
    level1_values,
    make_level1_density,
    refined_region,
    write_amr_snapshot,
)
from repro.diy import RegularDecomposer
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.workflow import Workflow

N = 16


class TestFieldDerivation:
    def test_derives_six_variables(self):
        sim = NyxProxy(N, None, seed=2, max_grid_size=8)
        fields = derive_fields(sim.advance())
        assert set(fields) == {
            "baryon_density", "temperature", "pressure",
            "velocity_x", "velocity_y", "velocity_z",
        }

    def test_derived_values_pointwise(self):
        sim = NyxProxy(N, None, seed=2, max_grid_size=8)
        density = sim.advance()
        fields = derive_fields(density)
        bid = density.local_box_ids[0]
        d = density.fab(bid)
        np.testing.assert_allclose(
            fields["temperature"].fab(bid), 1.0e4 * np.sqrt(1.0 + d)
        )
        np.testing.assert_allclose(fields["velocity_z"].fab(bid), 0.0)

    def test_refined_region_centered(self):
        r = refined_region((16, 16, 16))
        assert list(r.min) == [4, 4, 4]
        assert list(r.max) == [12, 12, 12]

    def test_level1_decomposition_independent(self):
        a = make_level1_density(None, (N, N, N))
        # Values must match the analytic helper for any box.
        for bid in a.local_box_ids:
            box = a.boxarray[bid]
            sel = box.to_selection(a.boxarray.domain)
            np.testing.assert_allclose(
                a.fab(bid).reshape(-1), level1_values(sel)
            )

    def test_level1_shape_refined(self):
        mf = make_level1_density(None, (N, N, N))
        assert mf.boxarray.domain == (
            REFINE_RATIO * 8, REFINE_RATIO * 8, REFINE_RATIO * 8
        )


def run_amr_workflow(read_paths, nprod=4, ncons=2):
    """Producer writes the full snapshot; consumers read ``read_paths``.

    Returns (WorkflowResult, per-consumer validation flags).
    """
    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
            vol.set_memory("amr.h5")
            if role == "producer":
                vol.serve_on_close("amr.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("amr.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        sim = NyxProxy(N, ctx.comm, seed=5, max_grid_size=8)
        write_amr_snapshot("amr.h5", sim, ctx.comm, vol, step=0)
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("amr.h5", "r", comm=ctx.comm, vol=vol)
        oks = []
        for path in read_paths:
            dset = f[path]
            dec = RegularDecomposer(dset.shape, ctx.size)
            if ctx.rank < dec.ngrid_blocks:
                sel = dec.block_bounds(ctx.rank).to_selection(dset.shape)
            else:
                from repro.h5.selection import NoneSelection

                sel = NoneSelection(dset.shape)
            vals = np.asarray(dset.read(sel, reshape=False))
            if path == "level_1/baryon_density" and sel.npoints:
                oks.append(np.allclose(vals, level1_values(sel)))
            else:
                oks.append(vals.size == sel.npoints)
        assert f.attrs["refine_ratio"] == REFINE_RATIO
        f.close()
        return all(oks)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(timeout=120.0)
    assert all(res.returns["consumer"])
    return res


class TestMinimalTransport:
    def test_one_variable_moves_fraction_of_bytes(self):
        """The intro claim: reading one of six level-0 variables moves
        roughly one sixth of the level-0 bytes."""
        one = run_amr_workflow(["native_fields/baryon_density"])
        all_vars = run_amr_workflow([
            f"native_fields/{v}" for v in
            ("baryon_density", "temperature", "pressure",
             "velocity_x", "velocity_y", "velocity_z")
        ])
        # 6 variables read vs 1: payload roughly 6x (metadata overhead
        # keeps it below exactly 6).
        assert all_vars.bytes_sent > 4 * one.bytes_sent

    def test_unread_datasets_never_hit_storage(self):
        res = run_amr_workflow(["native_fields/temperature"])
        # Memory mode: nothing at all reaches the PFS.
        assert res.bytes_sent > 0

    def test_refined_level_readable_alone(self):
        run_amr_workflow(["level_1/baryon_density"])

    def test_mixed_level_read(self):
        run_amr_workflow([
            "native_fields/baryon_density", "level_1/baryon_density",
        ])
