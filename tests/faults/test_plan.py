"""FaultPlan unit tests: PRF determinism, rule matching, bookkeeping."""

import pytest

from repro.faults import (
    CrashRule,
    FaultPlan,
    MessageFaultRule,
    OstSlowRule,
    RpcFaultRule,
)
from repro.pfs import LustreModel


def drain_decisions(plan, n=50, src=0, dst=1):
    return [plan.message_decision(src, dst) for _ in range(n)]


class TestPRF:
    def test_same_seed_same_decisions(self):
        rules = [MessageFaultRule(p_delay=0.4, max_delay=1e-3,
                                  p_duplicate=0.3)]
        a = drain_decisions(FaultPlan(42, messages=rules))
        b = drain_decisions(FaultPlan(42, messages=rules))
        assert a == b

    def test_different_seed_different_decisions(self):
        rules = [MessageFaultRule(p_delay=0.5, max_delay=1e-3)]
        a = drain_decisions(FaultPlan(1, messages=rules))
        b = drain_decisions(FaultPlan(2, messages=rules))
        assert a != b

    def test_draw_is_uniform_enough(self):
        plan = FaultPlan(7)
        draws = [plan._u("x", i) for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6

    def test_links_are_independent_streams(self):
        rules = [MessageFaultRule(p_delay=0.5, max_delay=1e-3)]
        plan = FaultPlan(3, messages=rules)
        a = drain_decisions(plan, src=0, dst=1)
        plan2 = FaultPlan(3, messages=rules)
        b = drain_decisions(plan2, src=2, dst=3)
        assert a != b


class TestMessageRules:
    def test_no_rule_no_decision(self):
        plan = FaultPlan(0)
        assert plan.message_decision(0, 1) is None

    def test_rule_filters_by_link(self):
        rules = [MessageFaultRule(src=0, dst=1, wire_factor=3.0)]
        plan = FaultPlan(0, messages=rules)
        assert plan.message_decision(0, 1).wire_factor == 3.0
        assert plan.message_decision(1, 0) is None
        assert plan.message_decision(0, 2) is None

    def test_first_matching_rule_wins(self):
        rules = [
            MessageFaultRule(src=0, wire_factor=2.0),
            MessageFaultRule(wire_factor=5.0),
        ]
        plan = FaultPlan(0, messages=rules)
        assert plan.message_decision(0, 1).wire_factor == 2.0
        assert plan.message_decision(1, 0).wire_factor == 5.0

    def test_pure_wire_factor_rule_always_decides(self):
        plan = FaultPlan(0, messages=[MessageFaultRule(wire_factor=2.0)])
        for _ in range(10):
            d = plan.message_decision(0, 1)
            assert d.wire_factor == 2.0
            assert d.extra_delay == 0.0 and not d.duplicate

    def test_injected_counts_accumulate(self):
        rules = [MessageFaultRule(p_delay=1.0, max_delay=1e-3,
                                  p_duplicate=1.0)]
        plan = FaultPlan(0, messages=rules)
        drain_decisions(plan, n=10)
        counts = plan.injected_counts()
        assert counts["msg_delay"] == 10
        assert counts["msg_duplicate"] == 10


class TestCrashRules:
    def test_crash_vtime_and_consumption(self):
        plan = FaultPlan(0, crashes=[CrashRule(rank=2, at_vtime=1.5)])
        assert plan.crash_vtime(2) == 1.5
        assert plan.crash_vtime(0) is None
        plan.note_crash(2)
        assert plan.crash_vtime(2) is None  # times=1 consumed
        assert plan.injected_counts()["crash"] == 1

    def test_times_bounds_occurrences(self):
        plan = FaultPlan(0, crashes=[CrashRule(rank=0, at_vtime=0.1,
                                               times=2)])
        plan.note_crash(0)
        assert plan.crash_vtime(0) == 0.1
        plan.note_crash(0)
        assert plan.crash_vtime(0) is None


class TestOstRules:
    def test_lustre_model_untouched_without_rules(self):
        model = LustreModel()
        assert FaultPlan(0).lustre_model(model) is model

    def test_slow_ost_degrades_whole_stripe_set(self):
        model = LustreModel(stripe_count=4)
        plan = FaultPlan(0, osts=[OstSlowRule(ost=2, factor=0.25)])
        slow = plan.lustre_model(model)
        assert slow.ost_factors == (1.0, 1.0, 0.25, 1.0)
        assert slow.slowest_ost_factor() == 0.25
        assert slow.stripe_peak() == model.stripe_peak() * 0.25
        assert slow.aggregate_bandwidth(8) < model.aggregate_bandwidth(8)
        assert slow.read_time(2**20, 8) > model.read_time(2**20, 8)
        assert slow.write_time(2**20, 8) > model.write_time(2**20, 8)
        assert plan.injected_counts()["ost_slow"] == 1

    def test_fast_ost_cannot_exceed_nominal(self):
        model = LustreModel(stripe_count=2)
        plan = FaultPlan(0, osts=[OstSlowRule(ost=0, factor=4.0)])
        assert plan.lustre_model(model).slowest_ost_factor() == 1.0

    def test_out_of_range_ost_ignored(self):
        model = LustreModel(stripe_count=2)
        plan = FaultPlan(0, osts=[OstSlowRule(ost=9, factor=0.1)])
        assert plan.lustre_model(model).slowest_ost_factor() == 1.0


class TestRpcRules:
    def test_lose_first_is_deterministic(self):
        plan = FaultPlan(0, rpcs=[RpcFaultRule(fn="read", lose_first=2)])
        assert plan.rpc_lost(3, 0, "read", attempt=0)
        assert plan.rpc_lost(3, 0, "read", attempt=1)
        assert not plan.rpc_lost(3, 0, "read", attempt=2)
        assert plan.injected_counts()["rpc_lost"] == 2

    def test_rule_filters(self):
        plan = FaultPlan(0, rpcs=[RpcFaultRule(fn="read", caller=3,
                                               lose_first=1)])
        assert plan.rpc_lost(3, 0, "read", 0)
        assert not plan.rpc_lost(2, 0, "read", 0)
        assert not plan.rpc_lost(3, 0, "metadata", 0)

    def test_p_lost_is_seeded(self):
        rule = RpcFaultRule(p_lost=0.5)
        a = [FaultPlan(9, rpcs=[rule]).rpc_lost(0, 0, "f", 0)
             for _ in range(1)]
        plan1 = FaultPlan(9, rpcs=[rule])
        plan2 = FaultPlan(9, rpcs=[rule])
        seq1 = [plan1.rpc_lost(0, 0, "f", 0) for _ in range(40)]
        seq2 = [plan2.rpc_lost(0, 0, "f", 0) for _ in range(40)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)

    def test_call_ordinal_advances_only_on_first_attempt(self):
        # Retries of one call share the ordinal: a p_lost draw that lost
        # attempt 0 of call k must not be re-drawn as a *different* call.
        rule = RpcFaultRule(p_lost=0.5)
        plan1 = FaultPlan(11, rpcs=[rule])
        first = plan1.rpc_lost(0, 0, "f", attempt=0)
        again = plan1.rpc_lost(0, 0, "f", attempt=0)  # next call
        plan2 = FaultPlan(11, rpcs=[rule])
        assert plan2.rpc_lost(0, 0, "f", attempt=0) == first
        assert plan2.rpc_lost(0, 0, "f", attempt=0) == again
