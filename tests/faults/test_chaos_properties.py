"""Chaos properties: recoverable faults never change results, and a
seed fully determines a faulty run.

Two invariants anchor the fault-injection subsystem:

1. **Transparency** -- message delays, duplicates and slow wires only
   move virtual time around; the index-serve-query protocol must
   deliver byte-identical data with or without them.
2. **Replayability** -- a seeded faulty run is bit-deterministic: two
   runs from fresh same-seed plans produce identical per-rank clocks,
   identical (virtual-time-sorted) communication traces, and identical
   redistributed bytes, regardless of host thread scheduling.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.h5 as h5
from repro.faults import FaultPlan, MessageFaultRule
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow

GRID = (8, 6, 4)
NPROD, NCONS = 2, 2


def chaos_rules():
    """Recoverable-only message faults on every link, aggressively."""
    return [MessageFaultRule(p_delay=0.4, max_delay=2e-3,
                             p_duplicate=0.3)]


def run_pc(faults=None, mode="memory", trace=False, timeout=60.0,
           nprod=NPROD, ncons=NCONS):
    """Producer/consumer grid exchange; consumers return raw bytes."""
    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm,
                                  under=NativeVOL(PFSStore()))
            if mode in ("memory", "both"):
                vol.set_memory("out.h5")
            if mode in ("file", "both"):
                vol.set_passthru("out.h5")
            if role == "producer":
                vol.serve_on_close("out.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("out.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("out.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("grid", shape=GRID, dtype=h5.UINT64)
        sel = producer_grid_selection(GRID, ctx.rank, ctx.size)
        d.write(grid_values(sel, GRID), file_select=sel)
        f.close()
        return "produced"

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("out.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_grid_selection(GRID, ctx.rank, ctx.size)
        gv = f["grid"].read(sel, reshape=False)
        assert validate_grid(sel, GRID, gv)
        f.close()
        return np.asarray(gv).tobytes()

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf.run(faults=faults, trace=trace, timeout=timeout)


def trace_key(result):
    """Hashable view of the sorted communication trace."""
    return [(e.vtime, e.kind, e.rank, e.peer, e.tag, e.nbytes, e.label)
            for e in result.trace]


@pytest.fixture(scope="module")
def baseline_bytes():
    """Fault-free reference results (memory mode)."""
    return run_pc().returns["consumer"]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_recoverable_faults_are_transparent(seed, baseline_bytes):
    plan = FaultPlan(seed, messages=chaos_rules())
    res = run_pc(faults=plan)
    assert res.returns["consumer"] == baseline_bytes


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_same_seed_replays_identically(seed):
    # Fresh plans from the same seed: clocks, trace and bytes must be
    # bit-identical across runs. Uses a single consumer so every RPC
    # server has one client: with concurrent clients the *handling
    # order* of simultaneously-pending requests depends on host
    # scheduling (a pre-existing engine property, independent of fault
    # injection), while a single blocking client makes the entire
    # virtual timeline a pure function of the fault seed.
    a = run_pc(faults=FaultPlan(seed, messages=chaos_rules()),
               trace=True, ncons=1)
    b = run_pc(faults=FaultPlan(seed, messages=chaos_rules()),
               trace=True, ncons=1)
    assert a.clocks == b.clocks
    assert trace_key(a) == trace_key(b)
    assert a.returns["consumer"] == b.returns["consumer"]
    assert a.messages == b.messages and a.bytes_sent == b.bytes_sent


def test_fixed_seed_regression_injects_and_reports():
    # A pinned seed that demonstrably injects: counts appear both in
    # the plan and in the obs metrics, and results stay correct.
    plan = FaultPlan(1234, messages=chaos_rules())
    res = run_pc(faults=plan)
    counts = plan.injected_counts()
    assert counts.get("msg_delay", 0) > 0
    assert counts.get("msg_duplicate", 0) > 0
    snap = res.obs.metrics.snapshot()
    injected = sum(v.total for (kind, key), v in snap.data.items()
                   if kind == "counter" and key[0] == "faults.injected")
    assert injected > 0
    names = {i.name for i in res.obs.spans.instants()}
    assert names & {"fault.msg_delay", "fault.msg_duplicate"}


def test_slow_wire_changes_time_not_bytes(baseline_bytes):
    plan = FaultPlan(5, messages=[MessageFaultRule(wire_factor=20.0)])
    clean = run_pc()
    slow = run_pc(faults=plan)
    assert slow.returns["consumer"] == baseline_bytes
    assert slow.vtime > clean.vtime


@pytest.mark.chaos
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_chaos_file_mode_transparent(seed):
    plan = FaultPlan(seed, messages=chaos_rules())
    clean = run_pc(mode="both")
    faulty = run_pc(faults=plan, mode="both")
    assert faulty.returns["consumer"] == clean.returns["consumer"]


@pytest.mark.chaos
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_chaos_heavy_duplication_sweep(seed):
    # Duplicate nearly everything: dedup must keep the protocol exact.
    plan = FaultPlan(seed, messages=[
        MessageFaultRule(p_delay=0.8, max_delay=5e-3, p_duplicate=0.9),
    ])
    res = run_pc(faults=plan)
    clean = run_pc()
    assert res.returns["consumer"] == clean.returns["consumer"]
    assert plan.injected_counts().get("msg_duplicate", 0) > 0
