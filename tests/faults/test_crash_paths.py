"""Crash paths: a dead rank produces a typed error, never a hang.

These tests aim a :class:`~repro.faults.CrashRule` into the middle of
the index-serve-query protocol by *self-calibration*: a fault-free run
is profiled first, the virtual-time midpoint of the interesting phase
(``lowfive.serve`` on a producer, ``lowfive.query`` on a consumer) is
read back from the span recorder, and a fresh run crashes the target
rank exactly there. Every peer must then observe a clean
:class:`~repro.simmpi.RankFailure` within the engine's real-time
watchdog -- the suite itself is the no-hang proof.
"""

import numpy as np
import pytest

import repro.h5 as h5
from repro.faults import CrashRule, FaultPlan
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.simmpi import RankFailure
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
)
from repro.workflow import Workflow

GRID = (8, 6, 4)
NPROD, NCONS = 2, 1  # world ranks: producers 0-1, consumer 2


def run_pc(faults=None, timeout=10.0):
    """Small producer/consumer exchange, optionally under a fault plan."""
    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm,
                                  under=NativeVOL(PFSStore()))
            vol.set_memory("out.h5")
            if role == "producer":
                vol.serve_on_close("out.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("out.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("out.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("grid", shape=GRID, dtype=h5.UINT64)
        sel = producer_grid_selection(GRID, ctx.rank, ctx.size)
        d.write(grid_values(sel, GRID), file_select=sel)
        f.close()
        return "produced"

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("out.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_grid_selection(GRID, ctx.rank, ctx.size)
        gv = f["grid"].read(sel, reshape=False)
        f.close()
        return np.asarray(gv).tobytes()

    wf = Workflow()
    wf.add_task("producer", NPROD, producer)
    wf.add_task("consumer", NCONS, consumer)
    wf.add_link("producer", "consumer")
    return wf.run(faults=faults, timeout=timeout)


def phase_midpoint(obs, name, rank):
    """Virtual-time midpoint of the first ``name`` span on ``rank``."""
    spans = [s for s in obs.spans.spans(name=name) if s.rank == rank]
    assert spans, f"no {name!r} span on rank {rank}"
    s = spans[0]
    assert s.t1 > s.t0, f"{name!r} span is empty"
    return 0.5 * (s.t0 + s.t1)


@pytest.fixture(scope="module")
def calibration():
    """Fault-free run providing phase timings for crash aiming."""
    return run_pc().obs


def test_producer_crash_mid_serve_fails_typed(calibration):
    # Kill producer rank 0 halfway through its serve phase: the blocked
    # consumer must see the failure instead of waiting forever.
    t = phase_midpoint(calibration, "lowfive.serve", rank=0)
    plan = FaultPlan(0, crashes=[CrashRule(rank=0, at_vtime=t,
                                           times=10)])
    with pytest.raises(RankFailure) as exc_info:
        run_pc(faults=plan)
    assert exc_info.value.rank == 0
    assert exc_info.value.vtime >= t
    assert plan.injected_counts()["crash"] >= 1


def test_consumer_crash_mid_query_fails_typed(calibration):
    # Kill the consumer (world rank 2) inside its query phase: the
    # producers' serve loops must terminate instead of waiting for a
    # done message that will never come.
    t = phase_midpoint(calibration, "lowfive.query", rank=NPROD)
    plan = FaultPlan(0, crashes=[CrashRule(rank=NPROD, at_vtime=t,
                                           times=10)])
    with pytest.raises(RankFailure) as exc_info:
        run_pc(faults=plan)
    assert exc_info.value.rank == NPROD


def test_crash_before_anything_kills_world_cleanly():
    plan = FaultPlan(0, crashes=[CrashRule(rank=1, at_vtime=0.0,
                                           times=10)])
    with pytest.raises(RankFailure) as exc_info:
        run_pc(faults=plan)
    assert exc_info.value.rank == 1


def test_crash_is_annotated_in_observability():
    plan = FaultPlan(0, crashes=[CrashRule(rank=0, at_vtime=0.0,
                                           times=10)])
    wf = Workflow()

    def body(ctx):
        ctx.comm.compute(1.0)
        return "done"

    wf.add_task("t", 2, body)
    with pytest.raises(RankFailure):
        wf.run(faults=plan)
    # The plan itself still carries the injection record.
    assert plan.injected_counts()["crash"] == 1
