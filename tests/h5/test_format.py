"""Binary file format roundtrip tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.h5 as h5
from repro.h5 import format as h5format
from repro.h5.dataspace import Dataspace
from repro.h5.errors import H5Error
from repro.h5.objects import DatasetNode, FileNode, GroupNode
from repro.h5.selection import (
    AllSelection,
    HyperslabSelection,
    IndexSetSelection,
    NoneSelection,
    PointSelection,
)


def roundtrip(root):
    return h5format.decode_file(h5format.encode_file(root), root.name)


def test_empty_file():
    root = FileNode("empty.h5")
    out = roundtrip(root)
    assert out.name == "empty.h5"
    assert out.children == {}


def test_header_validation():
    with pytest.raises(H5Error):
        h5format.decode_file(b"short")
    blob = bytearray(h5format.encode_file(FileNode("x")))
    blob[0:4] = b"XXXX"
    with pytest.raises(H5Error):
        h5format.decode_file(bytes(blob))


def test_version_check():
    blob = bytearray(h5format.encode_file(FileNode("x")))
    blob[8:12] = (99).to_bytes(4, "little")
    with pytest.raises(H5Error):
        h5format.decode_file(bytes(blob))


def test_groups_and_nesting():
    root = FileNode("f")
    a = root.add_child(GroupNode("a"))
    a.add_child(GroupNode("inner"))
    root.add_child(GroupNode("b"))
    out = roundtrip(root)
    assert sorted(out.children) == ["a", "b"]
    assert out.lookup("a/inner").path == "/a/inner"


def test_dataset_pieces_and_data():
    root = FileNode("f")
    g = root.add_child(GroupNode("g"))
    d = g.add_child(DatasetNode("grid", h5.UINT64, Dataspace((4, 4))))
    d.write(HyperslabSelection((4, 4), (0, 0), (2, 4)), np.arange(8))
    d.write(HyperslabSelection((4, 4), (2, 0), (2, 4)), np.arange(8) + 8)
    out = roundtrip(root)
    dd = out.lookup("g/grid")
    assert dd.dtype == h5.UINT64
    assert dd.space.shape == (4, 4)
    assert len(dd.pieces) == 2
    np.testing.assert_array_equal(
        dd.read(AllSelection((4, 4))), np.arange(16)
    )


def test_fill_value_preserved():
    root = FileNode("f")
    d = root.add_child(
        DatasetNode("d", h5.INT32, Dataspace((3,)), fill_value=-5)
    )
    out = roundtrip(root)
    dd = out.lookup("d")
    np.testing.assert_array_equal(dd.read(AllSelection((3,))), [-5] * 3)


def test_compound_dataset_roundtrip():
    ptype = h5.compound([("x", "f4"), ("y", "f4"), ("z", "f4")])
    root = FileNode("f")
    d = root.add_child(DatasetNode("particles", ptype, Dataspace((5,))))
    vals = np.zeros(5, dtype=ptype.np)
    vals["x"] = np.arange(5)
    d.write(AllSelection((5,)), vals)
    out = roundtrip(root)
    got = out.lookup("particles").read(AllSelection((5,)))
    np.testing.assert_array_equal(got["x"], np.arange(5, dtype="f4"))


def test_attributes_roundtrip():
    root = FileNode("f")
    a = root.create_attribute("time", h5.FLOAT64, Dataspace(()))
    a.write(1.5)
    g = root.add_child(GroupNode("g"))
    b = g.create_attribute("origin", h5.INT32, Dataspace((2,)))
    b.write([3, 4])
    unwritten = root.create_attribute("later", h5.INT8, Dataspace(()))
    out = roundtrip(root)
    assert float(out.get_attribute("time").read()) == 1.5
    np.testing.assert_array_equal(
        out.lookup("g").get_attribute("origin").read(), [3, 4]
    )
    assert out.get_attribute("later").value is None


SELS = [
    AllSelection((4, 6)),
    NoneSelection((4, 6)),
    HyperslabSelection((4, 6), (1, 2), (2, 2)),
    HyperslabSelection((4, 6), (0, 0), (2, 2), stride=(2, 3), block=(1, 2)),
    IndexSetSelection((4, 6), [[0, 2], [1, 3, 5]]),
    PointSelection((4, 6), [(3, 5), (0, 0)]),
]


@pytest.mark.parametrize("sel", SELS, ids=lambda s: type(s).__name__)
def test_selection_codec_roundtrip(sel):
    w = h5format.Writer()
    h5format.encode_selection(w, sel)
    out = h5format.decode_selection(h5format.Reader(w.getvalue()))
    assert out.shape == sel.shape
    assert out.same_elements(sel)
    if isinstance(sel, PointSelection):  # order must survive
        np.testing.assert_array_equal(out.coords(), sel.coords())


def test_writer_reader_primitives():
    w = h5format.Writer()
    w.u8(7)
    w.u32(70000)
    w.u64(2**40)
    w.i64(-12)
    w.text("héllo")
    w.blob(b"raw")
    r = h5format.Reader(w.getvalue())
    assert r.u8() == 7
    assert r.u32() == 70000
    assert r.u64() == 2**40
    assert r.i64() == -12
    assert r.text() == "héllo"
    assert r.blob() == b"raw"


def test_reader_truncation_raises():
    r = h5format.Reader(b"\x01")
    with pytest.raises(H5Error):
        r.u64()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**32), min_size=0, max_size=64))
def test_prop_dataset_values_roundtrip(values):
    root = FileNode("f")
    n = max(1, len(values))
    d = root.add_child(DatasetNode("d", h5.UINT64, Dataspace((n,))))
    if values:
        d.write(AllSelection((n,)), np.array(values, dtype=np.uint64))
    out = roundtrip(root).lookup("d")
    if values:
        np.testing.assert_array_equal(
            out.read(AllSelection((n,))), np.array(values, dtype=np.uint64)
        )
