"""API + native VOL tests, serial and parallel (over simmpi)."""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.errors import (
    ClosedError,
    ExistsError,
    H5Error,
    ModeError,
    NotFoundError,
    SelectionError,
)
from repro.h5.native import NativeVOL
from repro.h5.plist import DatasetCreateProps, TransferProps
from repro.pfs import PFSStore
from repro.simmpi import run_world


@pytest.fixture
def vol():
    return NativeVOL()


class TestSerial:
    def test_create_write_read_roundtrip(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("x", data=np.arange(10, dtype="i4"))
            assert d.shape == (10,)
        with h5.File("a.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(f["x"].read(), np.arange(10))

    def test_nested_paths_in_create_dataset(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("g1/g2/data", data=[1.5, 2.5])
        with h5.File("a.h5", "r", vol=vol) as f:
            assert "g1" in f
            assert f["g1"].keys() == ["g2"]
            np.testing.assert_array_equal(f["g1/g2/data"].read(), [1.5, 2.5])

    def test_groups_and_keys(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_group("b")
            f.create_group("a/inner")
            f.create_dataset("c", data=[1])
            assert sorted(f.keys()) == ["a", "b", "c"]
            items = dict(f.items())
            assert isinstance(items["a"], h5.Group)
            assert isinstance(items["c"], h5.Dataset)

    def test_require_group(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            g = f.require_group("g")
            g2 = f.require_group("g")
            assert g.name == g2.name
            f.create_dataset("d", data=[1])
            with pytest.raises(H5Error):
                f.require_group("d")

    def test_hyperslab_write_read(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("m", shape=(6, 6), dtype=h5.FLOAT64)
            d.write(np.ones((3, 3)), file_select=h5.hyperslab((1, 1), (3, 3)))
            block = d.read(h5.hyperslab((0, 0), (3, 3)))
            assert block[0, 0] == 0 and block[1, 1] == 1

    def test_getitem_setitem_slicing(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("m", shape=(4, 4), dtype="i8")
            d[1:3, 1:3] = [[1, 2], [3, 4]]
            np.testing.assert_array_equal(d[1:3, 1:3], [[1, 2], [3, 4]])
            np.testing.assert_array_equal(d[2, 1:3], [3, 4])
            assert d[..., ] .shape == (4, 4)

    def test_negative_index(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("v", data=np.arange(5))
            assert d[-1,] if False else True
            assert d[(-1,)] == 4

    def test_attrs_mapping(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.attrs["run"] = 12
            g = f.create_group("g")
            g.attrs["origin"] = np.array([0.0, 1.0])
            assert "run" in f.attrs
            assert f.attrs.keys() == ["run"]
            assert len(g.attrs) == 1
        with h5.File("a.h5", "r", vol=vol) as f:
            assert f.attrs["run"] == 12
            np.testing.assert_array_equal(f["g"].attrs["origin"], [0.0, 1.0])

    def test_mode_enforcement(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[1])
        with h5.File("a.h5", "r", vol=vol) as f:
            with pytest.raises(ModeError):
                f["d"].write([2])

    def test_exclusive_create(self, vol):
        h5.File("a.h5", "x", vol=vol).close()
        with pytest.raises(ExistsError):
            h5.File("a.h5", "x", vol=vol)

    def test_open_missing_raises(self, vol):
        with pytest.raises(NotFoundError):
            h5.File("missing.h5", "r", vol=vol)

    def test_bad_mode(self, vol):
        with pytest.raises(H5Error):
            h5.File("a.h5", "q", vol=vol)

    def test_double_close(self, vol):
        f = h5.File("a.h5", "w", vol=vol)
        f.close()
        with pytest.raises(ClosedError):
            f.close()

    def test_append_mode_reopens(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[1, 2])
        with h5.File("a.h5", "a", vol=vol) as f:
            f.create_dataset("e", data=[3])
        with h5.File("a.h5", "r", vol=vol) as f:
            assert sorted(f.keys()) == ["d", "e"]

    def test_truncate_on_w(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("old", data=[1])
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("new", data=[2])
        with h5.File("a.h5", "r", vol=vol) as f:
            assert f.keys() == ["new"]

    def test_fill_value_dcpl(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", shape=(3,), dtype="i4",
                             dcpl=DatasetCreateProps(fill_value=9))
        with h5.File("a.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(f["d"].read(), [9, 9, 9])

    def test_create_dataset_conflicting_type(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", shape=(3,), dtype="i4")
            with pytest.raises(ExistsError):
                f.create_dataset("d", shape=(3,), dtype="f8")

    def test_create_dataset_needs_shape(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            with pytest.raises(H5Error):
                f.create_dataset("d")

    def test_write_size_mismatch(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("d", shape=(4,), dtype="i4")
            with pytest.raises(SelectionError):
                d.write([1, 2, 3])

    def test_compound_dataset(self, vol):
        ptype = h5.compound([("pos", "3f4"), ("id", "u8")])
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("p", shape=(4,), dtype=ptype)
            vals = np.zeros(4, dtype=ptype.np)
            vals["id"] = np.arange(4)
            d.write(vals)
        with h5.File("a.h5", "r", vol=vol) as f:
            out = f["p"].read()
            np.testing.assert_array_equal(out["id"], np.arange(4))

    def test_points_selection_io(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("d", shape=(5,), dtype="i4")
            d.write([10, 30], file_select=h5.points([1, 3]))
            np.testing.assert_array_equal(d.read(), [0, 10, 0, 30, 0])


class TestParallel:
    def test_collective_write_then_separate_read(self):
        """N writer ranks, then a fresh read from the stored bytes."""
        store = PFSStore()

        def producer(comm):
            vol = producer.vol
            f = h5.File("out.h5", "w", comm=comm, vol=vol)
            d = f.create_dataset("grid", shape=(8, 8), dtype=h5.UINT64)
            rows = 8 // comm.size
            start = comm.rank * rows
            block = np.arange(rows * 8, dtype=np.uint64) + 1000 * comm.rank
            d.write(block, file_select=h5.hyperslab((start, 0), (rows, 8)))
            f.attrs["step"] = 1
            f.close()

        producer.vol = NativeVOL(store)
        run_world(4, producer)

        # Fresh VOL instance simulating a different task reading the file.
        f = h5.File("out.h5", "r", vol=NativeVOL(store))
        grid = f["grid"].read()
        for r in range(4):
            np.testing.assert_array_equal(
                grid[2 * r: 2 * r + 2].ravel(),
                np.arange(16, dtype=np.uint64) + 1000 * r,
            )
        assert f.attrs["step"] == 1
        f.close()

    def test_parallel_io_charges_lustre_time(self):
        store = PFSStore()
        vol = NativeVOL(store)

        def main(comm):
            f = h5.File("o.h5", "w", comm=comm, vol=vol)
            d = f.create_dataset("d", shape=(4,), dtype="f8")
            d.write([float(comm.rank)],
                    file_select=h5.hyperslab((comm.rank,), (1,)))
            f.close()

        res = run_world(4, main)
        # Collective open dominates: open_base=8s plus mds serialization.
        assert res.vtime > vol.lustre.open_time(4)

    def test_independent_write_costs_more(self):
        def run(collective):
            store = PFSStore()
            vol = NativeVOL(store)

            def main(comm):
                f = h5.File("o.h5", "w", comm=comm, vol=vol)
                d = f.create_dataset("d", shape=(4 * 10**6,), dtype="f8")
                n = 10**6
                d.write(
                    np.zeros(n),
                    file_select=h5.hyperslab((comm.rank * n,), (n,)),
                    dxpl=TransferProps(collective=collective),
                )
                f.close()

            return run_world(4, main).vtime

        assert run(False) > run(True)

    def test_collective_creates_are_idempotent_across_ranks(self):
        store = PFSStore()
        vol = NativeVOL(store)

        def main(comm):
            f = h5.File("o.h5", "w", comm=comm, vol=vol)
            g = f.create_group("g")  # every rank creates the same group
            d = g.create_dataset("d", shape=(4,), dtype="i4")
            d.write([comm.rank], file_select=h5.hyperslab((comm.rank,), (1,)))
            f.close()

        run_world(4, main)
        f = h5.File("o.h5", "r", vol=NativeVOL(store))
        np.testing.assert_array_equal(f["g/d"].read(), [0, 1, 2, 3])
        f.close()
