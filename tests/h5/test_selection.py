"""Selection algebra tests, including hypothesis property tests.

The intersection machinery here is the core of LowFive's redistribution
(producer-written selections x consumer-read selections), so it gets the
heaviest property coverage.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.h5.errors import SelectionError
from repro.h5.selection import (
    AllSelection,
    HyperslabSelection,
    IndexSetSelection,
    NoneSelection,
    PointSelection,
    bind_selection,
    hyperslab,
    points,
    select_all,
)


class TestBasics:
    def test_all_selection(self):
        s = AllSelection((3, 4))
        assert s.npoints == 12
        assert s.is_separable
        lo, hi = s.bounds()
        assert list(lo) == [0, 0] and list(hi) == [3, 4]

    def test_none_selection(self):
        s = NoneSelection((3, 4))
        assert s.npoints == 0
        assert s.coords().shape == (0, 2)

    def test_hyperslab_simple(self):
        s = HyperslabSelection((10, 10), start=(2, 3), count=(4, 5))
        assert s.npoints == 20
        lo, hi = s.bounds()
        assert list(lo) == [2, 3] and list(hi) == [6, 8]
        assert s.is_contiguous

    def test_hyperslab_stride_block(self):
        # 3 blocks of 2, stride 4: indices 0,1, 4,5, 8,9
        s = HyperslabSelection((12,), start=0, count=3, stride=4, block=2)
        np.testing.assert_array_equal(
            s.per_dim_indices()[0], [0, 1, 4, 5, 8, 9]
        )
        assert s.npoints == 6
        assert not s.is_contiguous

    def test_hyperslab_validation(self):
        with pytest.raises(SelectionError):
            HyperslabSelection((4,), start=0, count=5)  # too long
        with pytest.raises(SelectionError):
            HyperslabSelection((10,), start=0, count=2, stride=2, block=3)
        with pytest.raises(SelectionError):
            HyperslabSelection((10,), start=-1, count=1)
        with pytest.raises(SelectionError):
            HyperslabSelection((10, 10), start=(0,), count=(1,))

    def test_point_selection_order_preserved(self):
        s = PointSelection((5, 5), [(4, 4), (0, 0), (2, 3)])
        np.testing.assert_array_equal(s.coords(), [[4, 4], [0, 0], [2, 3]])

    def test_point_selection_validation(self):
        with pytest.raises(SelectionError):
            PointSelection((3, 3), [(3, 0)])
        with pytest.raises(SelectionError):
            PointSelection((3, 3), [(0, 0, 0)])

    def test_index_set_sorts_and_dedups(self):
        s = IndexSetSelection((10,), [[3, 1, 3, 7]])
        np.testing.assert_array_equal(s.per_dim_indices()[0], [1, 3, 7])


class TestExtractScatter:
    def test_extract_contiguous_box(self):
        arr = np.arange(20).reshape(4, 5)
        s = HyperslabSelection((4, 5), (1, 1), (2, 3))
        np.testing.assert_array_equal(
            s.extract(arr), [6, 7, 8, 11, 12, 13]
        )

    def test_extract_strided(self):
        arr = np.arange(10)
        s = HyperslabSelection((10,), 0, 5, stride=2)
        np.testing.assert_array_equal(s.extract(arr), [0, 2, 4, 6, 8])

    def test_scatter_roundtrip(self):
        arr = np.zeros((6, 6), dtype=int)
        s = HyperslabSelection((6, 6), (0, 0), (3, 2), stride=(2, 3))
        vals = np.arange(s.npoints) + 100
        s.scatter(vals, arr)
        np.testing.assert_array_equal(s.extract(arr), vals)
        # Only selected cells were touched.
        assert (arr != 0).sum() == s.npoints

    def test_extract_points(self):
        arr = np.arange(9).reshape(3, 3)
        s = PointSelection((3, 3), [(2, 2), (0, 1)])
        np.testing.assert_array_equal(s.extract(arr), [8, 1])

    def test_scatter_points(self):
        arr = np.zeros(5, dtype=int)
        s = PointSelection((5,), [3, 1])
        s.scatter([30, 10], arr)
        np.testing.assert_array_equal(arr, [0, 10, 0, 30, 0])

    def test_shape_mismatch_raises(self):
        s = AllSelection((3, 3))
        with pytest.raises(SelectionError):
            s.extract(np.zeros((2, 2)))
        with pytest.raises(SelectionError):
            s.scatter(np.zeros(9), np.zeros((2, 2)))

    def test_scatter_wrong_count_raises(self):
        s = AllSelection((2, 2))
        with pytest.raises(SelectionError):
            s.scatter(np.zeros(3), np.zeros((2, 2)))

    def test_extract_row_major_order(self):
        arr = np.arange(16).reshape(4, 4)
        s = HyperslabSelection((4, 4), (1, 1), (2, 2))
        np.testing.assert_array_equal(s.extract(arr), [5, 6, 9, 10])


class TestIntersect:
    def test_disjoint(self):
        a = HyperslabSelection((10,), 0, 3)
        b = HyperslabSelection((10,), 5, 3)
        assert isinstance(a.intersect(b), NoneSelection)

    def test_overlap_becomes_hyperslab(self):
        a = HyperslabSelection((10, 10), (0, 0), (6, 6))
        b = HyperslabSelection((10, 10), (4, 4), (6, 6))
        c = a.intersect(b)
        assert isinstance(c, HyperslabSelection)
        lo, hi = c.bounds()
        assert list(lo) == [4, 4] and list(hi) == [6, 6]

    def test_strided_intersection_exact(self):
        a = HyperslabSelection((20,), 0, 10, stride=2)  # evens
        b = HyperslabSelection((20,), 0, 7, stride=3)   # multiples of 3
        c = a.intersect(b)
        np.testing.assert_array_equal(
            c.per_dim_indices()[0], [0, 6, 12, 18]
        )

    def test_all_is_identity(self):
        a = HyperslabSelection((8, 8), (2, 2), (3, 3))
        c = AllSelection((8, 8)).intersect(a)
        assert c.same_elements(a)

    def test_none_annihilates(self):
        a = AllSelection((4,))
        assert isinstance(a.intersect(NoneSelection((4,))), NoneSelection)
        assert isinstance(NoneSelection((4,)).intersect(a), NoneSelection)

    def test_points_vs_hyperslab(self):
        pts = PointSelection((6, 6), [(0, 0), (3, 3), (5, 5)])
        box = HyperslabSelection((6, 6), (2, 2), (3, 3))
        c = pts.intersect(box)
        np.testing.assert_array_equal(c.coords(), [[3, 3]])
        # Symmetric version routes through PointSelection.intersect.
        c2 = box.intersect(pts)
        np.testing.assert_array_equal(c2.coords(), [[3, 3]])

    def test_points_vs_points(self):
        a = PointSelection((9,), [1, 3, 5])
        b = PointSelection((9,), [5, 1])
        c = a.intersect(b)
        np.testing.assert_array_equal(c.coords().ravel(), [1, 5])

    def test_extent_mismatch_raises(self):
        with pytest.raises(SelectionError):
            AllSelection((3,)).intersect(AllSelection((4,)))


class TestTranslateAndSimplify:
    def test_translate_hyperslab(self):
        s = HyperslabSelection((10, 10), (4, 6), (2, 2))
        t = s.translate((4, 6), (2, 2))
        lo, hi = t.bounds()
        assert list(lo) == [0, 0] and list(hi) == [2, 2]

    def test_translate_out_of_extent_raises(self):
        s = HyperslabSelection((10,), 0, 2)
        with pytest.raises(SelectionError):
            s.translate((1,), (2,))

    def test_translate_points(self):
        s = PointSelection((8, 8), [(4, 4), (5, 6)])
        t = s.translate((4, 4), (4, 4))
        np.testing.assert_array_equal(t.coords(), [[0, 0], [1, 2]])

    def test_indexset_simplify_to_hyperslab(self):
        s = IndexSetSelection((10, 10), [[2, 3, 4], [7, 8]])
        simp = s.simplify()
        assert isinstance(simp, HyperslabSelection)
        assert simp.start == (2, 7) and simp.count == (3, 2)

    def test_indexset_simplify_noncontiguous_stays(self):
        s = IndexSetSelection((10,), [[1, 3, 5]])
        assert s.simplify() is s

    def test_indexset_simplify_empty_to_none(self):
        s = IndexSetSelection((10, 10), [[1], []])
        assert isinstance(s.simplify(), NoneSelection)


class TestSameElements:
    def test_separable_fast_path_matches_point_path(self):
        """A hyperslab and the point selection enumerating the same
        cells agree under both comparison routes (separable/separable
        vs separable/points)."""
        hs = HyperslabSelection((6, 6), (1, 2), (2, 2), stride=(2, 3))
        pts = PointSelection(
            (6, 6), [(i, j) for i in (1, 3) for j in (2, 5)]
        )
        assert hs.same_elements(pts)
        assert pts.same_elements(hs)

    def test_separable_mismatch(self):
        a = HyperslabSelection((8,), 0, 4)
        b = HyperslabSelection((8,), 1, 4)
        assert not a.same_elements(b)
        assert a.same_elements(HyperslabSelection((8,), 0, 4, stride=1))

    def test_point_order_and_duplicates_ignored(self):
        a = PointSelection((5, 5), [(0, 1), (4, 4), (2, 3)])
        b = PointSelection((5, 5), [(2, 3), (0, 1), (4, 4)])
        assert a.same_elements(b)
        c = PointSelection((5, 5), [(0, 1), (0, 1), (2, 3)])
        assert not a.same_elements(c)  # npoints differ

    def test_empty_selections_equal(self):
        assert NoneSelection((3, 3)).same_elements(
            IndexSetSelection((3, 3), [[1], []]))

    def test_shape_mismatch_is_false(self):
        assert not AllSelection((4,)).same_elements(AllSelection((5,)))


class TestSpecs:
    def test_bind_none_gives_all(self):
        s = bind_selection(None, (3, 3))
        assert isinstance(s, AllSelection)

    def test_bind_specs(self):
        assert bind_selection(select_all(), (4,)).npoints == 4
        hs = bind_selection(hyperslab(1, 2), (4,))
        assert hs.npoints == 2
        ps = bind_selection(points([0, 3]), (4,))
        assert ps.npoints == 2

    def test_bind_bound_selection_checks_extent(self):
        s = AllSelection((4,))
        assert bind_selection(s, (4,)) is s
        with pytest.raises(SelectionError):
            bind_selection(s, (5,))

    def test_bind_garbage_raises(self):
        with pytest.raises(SelectionError):
            bind_selection(42, (4,))


# -- hypothesis strategies ---------------------------------------------------

dims = st.integers(min_value=1, max_value=3)


@st.composite
def shapes(draw, max_extent=12):
    nd = draw(dims)
    return tuple(
        draw(st.integers(min_value=1, max_value=max_extent))
        for _ in range(nd)
    )


@st.composite
def hyperslabs(draw, shape):
    start, count, stride, block = [], [], [], []
    for extent in shape:
        b = draw(st.integers(min_value=1, max_value=max(1, extent // 2)))
        stv = draw(st.integers(min_value=b, max_value=max(b, extent)))
        max_count = (extent - b) // stv + 1
        c = draw(st.integers(min_value=1, max_value=max_count))
        s = draw(st.integers(min_value=0,
                             max_value=extent - ((c - 1) * stv + b)))
        start.append(s)
        count.append(c)
        stride.append(stv)
        block.append(b)
    return HyperslabSelection(shape, start, count, stride, block)


@st.composite
def two_hyperslabs(draw):
    shape = draw(shapes())
    return draw(hyperslabs(shape)), draw(hyperslabs(shape))


@settings(max_examples=120, deadline=None)
@given(two_hyperslabs())
def test_prop_intersection_matches_bruteforce(pair):
    a, b = pair
    got = {tuple(c) for c in a.intersect(b).coords()}
    want = {tuple(c) for c in a.coords()} & {tuple(c) for c in b.coords()}
    assert got == want


@settings(max_examples=120, deadline=None)
@given(two_hyperslabs())
def test_prop_intersection_commutative(pair):
    a, b = pair
    assert a.intersect(b).same_elements(b.intersect(a))


@settings(max_examples=80, deadline=None)
@given(two_hyperslabs())
def test_prop_intersection_subset_of_both(pair):
    a, b = pair
    c = a.intersect(b)
    assert c.same_elements(c.intersect(a))
    assert c.same_elements(c.intersect(b))


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_prop_extract_scatter_roundtrip(data):
    shape = data.draw(shapes())
    sel = data.draw(hyperslabs(shape))
    arr = np.zeros(shape, dtype=np.int64)
    vals = np.arange(1, sel.npoints + 1)
    sel.scatter(vals, arr)
    np.testing.assert_array_equal(sel.extract(arr), vals)
    assert int((arr != 0).sum()) == sel.npoints


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_prop_extract_order_is_row_major(data):
    shape = data.draw(shapes())
    sel = data.draw(hyperslabs(shape))
    # Encode position in values; extraction must walk coords row-major.
    arr = np.arange(np.prod(shape), dtype=np.int64).reshape(shape)
    flat_ids = np.ravel_multi_index(sel.coords().T, shape)
    np.testing.assert_array_equal(sel.extract(arr), flat_ids)
    assert (np.diff(flat_ids) > 0).all()  # row-major => strictly increasing


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_prop_npoints_consistent_with_coords(data):
    shape = data.draw(shapes())
    sel = data.draw(hyperslabs(shape))
    assert sel.npoints == len(sel.coords())
    assert sel.npoints == len({tuple(c) for c in sel.coords()})
