"""Metadata-hierarchy (tree) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.h5 as h5
from repro.h5.dataspace import Dataspace
from repro.h5.errors import ExistsError, NotFoundError, SelectionError
from repro.h5.objects import (
    DatasetNode,
    FileNode,
    GroupNode,
    OWN_DEEP,
    OWN_SHALLOW,
    split_path,
)
from repro.h5.selection import AllSelection, HyperslabSelection, PointSelection


def make_tree():
    """The paper's Fig. 1 example: one file, two groups, two datasets."""
    f = FileNode("step1.h5")
    g1 = f.add_child(GroupNode("group1"))
    g2 = f.add_child(GroupNode("group2"))
    grid = g1.add_child(
        DatasetNode("grid", h5.UINT64, Dataspace((4, 4, 4)))
    )
    particles = g2.add_child(
        DatasetNode("particles", h5.FLOAT32, Dataspace((100, 3)))
    )
    return f, g1, g2, grid, particles


def test_split_path():
    assert split_path("/a/b/c") == ["a", "b", "c"]
    assert split_path("a//b/") == ["a", "b"]
    assert split_path("/") == []


def test_paths():
    f, g1, g2, grid, particles = make_tree()
    assert f.path == "/"
    assert g1.path == "/group1"
    assert grid.path == "/group1/grid"
    assert particles.path == "/group2/particles"
    assert grid.file_node is f


def test_lookup_absolute_and_relative():
    f, g1, g2, grid, particles = make_tree()
    assert f.lookup("group1/grid") is grid
    assert g1.lookup("grid") is grid
    assert g1.lookup("/group2/particles") is particles
    with pytest.raises(NotFoundError):
        f.lookup("group1/nope")
    with pytest.raises(NotFoundError):
        f.lookup("group1/grid/below")  # dataset is not a group


def test_exists():
    f, g1, *_ = make_tree()
    assert f.exists("group1/grid")
    assert not f.exists("group3")


def test_duplicate_link_rejected():
    f, g1, *_ = make_tree()
    with pytest.raises(ExistsError):
        f.add_child(GroupNode("group1"))


def test_remove_child():
    f, g1, *_ = make_tree()
    f.remove_child("group1")
    assert not f.exists("group1")
    with pytest.raises(NotFoundError):
        f.remove_child("group1")


def test_require_groups_creates_intermediates():
    f = FileNode("x")
    g = f.require_groups("a/b/c")
    assert g.path == "/a/b/c"
    assert f.require_groups("a/b/c") is g
    g.add_child(DatasetNode("d", h5.UINT8, Dataspace((1,))))
    with pytest.raises(ExistsError):
        f.require_groups("a/b/c/d")  # exists, not a group


def test_walk_depth_first_sorted():
    f, *_ = make_tree()
    names = [n.path for n in f.walk()]
    assert names == [
        "/group1", "/group1/grid", "/group2", "/group2/particles"
    ]


class TestDatasetPieces:
    def test_write_read_full(self):
        d = DatasetNode("d", h5.UINT32, Dataspace((4, 4)))
        d.write(AllSelection((4, 4)), np.arange(16))
        out = d.read(AllSelection((4, 4)))
        np.testing.assert_array_equal(out, np.arange(16))

    def test_multi_piece_assembly(self):
        d = DatasetNode("d", h5.INT64, Dataspace((4, 6)))
        top = HyperslabSelection((4, 6), (0, 0), (2, 6))
        bot = HyperslabSelection((4, 6), (2, 0), (2, 6))
        d.write(top, np.full(12, 1))
        d.write(bot, np.full(12, 2))
        out = d.read(AllSelection((4, 6))).reshape(4, 6)
        assert (out[:2] == 1).all() and (out[2:] == 2).all()

    def test_partial_read_across_pieces(self):
        d = DatasetNode("d", h5.INT64, Dataspace((4, 4)))
        d.write(HyperslabSelection((4, 4), (0, 0), (4, 2)),
                np.arange(8))          # left half
        d.write(HyperslabSelection((4, 4), (0, 2), (4, 2)),
                np.arange(8) + 100)    # right half
        mid = HyperslabSelection((4, 4), (1, 1), (2, 2))
        out = d.read(mid).reshape(2, 2)
        # col 1 from left piece, col 2 from right piece
        np.testing.assert_array_equal(out, [[3, 102], [5, 104]])

    def test_unwritten_elements_get_fill(self):
        d = DatasetNode("d", h5.INT32, Dataspace((4,)), fill_value=-1)
        d.write(PointSelection((4,), [1]), [7])
        np.testing.assert_array_equal(
            d.read(AllSelection((4,))), [-1, 7, -1, -1]
        )

    def test_default_fill_zero(self):
        d = DatasetNode("d", h5.INT32, Dataspace((3,)))
        np.testing.assert_array_equal(d.read(AllSelection((3,))), [0, 0, 0])

    def test_later_pieces_overwrite(self):
        d = DatasetNode("d", h5.INT32, Dataspace((3,)))
        d.write(AllSelection((3,)), [1, 1, 1])
        d.write(PointSelection((3,), [1]), [9])
        np.testing.assert_array_equal(d.read(AllSelection((3,))), [1, 9, 1])

    def test_deep_copy_isolates_user_buffer(self):
        d = DatasetNode("d", h5.INT64, Dataspace((3,)))
        buf = np.array([1, 2, 3])
        d.write(AllSelection((3,)), buf, ownership=OWN_DEEP)
        buf[:] = 0
        np.testing.assert_array_equal(d.read(AllSelection((3,))), [1, 2, 3])

    def test_shallow_reference_sees_user_buffer(self):
        d = DatasetNode("d", h5.INT64, Dataspace((3,)))
        buf = np.array([1, 2, 3])
        d.write(AllSelection((3,)), buf, ownership=OWN_SHALLOW)
        buf[:] = 7
        np.testing.assert_array_equal(d.read(AllSelection((3,))), [7, 7, 7])

    def test_bad_ownership(self):
        d = DatasetNode("d", h5.INT64, Dataspace((3,)))
        with pytest.raises(ValueError):
            d.write(AllSelection((3,)), [1, 2, 3], ownership="borrowed")

    def test_size_mismatch(self):
        d = DatasetNode("d", h5.INT64, Dataspace((3,)))
        with pytest.raises(SelectionError):
            d.write(AllSelection((3,)), [1, 2])

    def test_extent_mismatch(self):
        d = DatasetNode("d", h5.INT64, Dataspace((3,)))
        with pytest.raises(SelectionError):
            d.write(AllSelection((4,)), [1, 2, 3, 4])
        with pytest.raises(SelectionError):
            d.read(AllSelection((4,)))

    def test_strided_piece_read(self):
        d = DatasetNode("d", h5.INT64, Dataspace((10,)))
        evens = HyperslabSelection((10,), 0, 5, stride=2)
        d.write(evens, [0, 2, 4, 6, 8])
        out = d.read(HyperslabSelection((10,), 0, 6))
        np.testing.assert_array_equal(out, [0, 0, 2, 0, 4, 0])

    def test_total_written_bytes(self):
        d = DatasetNode("d", h5.INT64, Dataspace((4,)))
        d.write(AllSelection((4,)), [1, 2, 3, 4])
        assert d.total_written_bytes == 32


class TestAttributes:
    def test_create_write_read(self):
        f = FileNode("x")
        a = f.create_attribute("time", h5.FLOAT64, Dataspace(()))
        a.write(3.25)
        assert float(a.read()) == 3.25

    def test_array_attribute(self):
        f = FileNode("x")
        a = f.create_attribute("origin", h5.FLOAT32, Dataspace((3,)))
        a.write([1, 2, 3])
        np.testing.assert_array_equal(a.read(), [1, 2, 3])

    def test_duplicate_attribute(self):
        f = FileNode("x")
        f.create_attribute("a", h5.INT32, Dataspace(()))
        with pytest.raises(ExistsError):
            f.create_attribute("a", h5.INT32, Dataspace(()))

    def test_missing_attribute(self):
        f = FileNode("x")
        with pytest.raises(NotFoundError):
            f.get_attribute("nope")
        a = f.create_attribute("a", h5.INT32, Dataspace(()))
        with pytest.raises(NotFoundError):
            a.read()  # never written


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 9), st.integers(1, 10)), min_size=1, max_size=6,
))
def test_prop_piece_assembly_matches_dense_mirror(spans):
    """Random 1-d writes: tree reads must equal a dense numpy mirror."""
    extent = 24
    d = DatasetNode("d", h5.INT64, Dataspace((extent,)))
    mirror = np.zeros(extent, dtype=np.int64)
    for i, (start, length) in enumerate(spans):
        length = min(length, extent - start)
        if length <= 0:
            continue
        sel = HyperslabSelection((extent,), start, length)
        vals = np.full(length, i + 1)
        d.write(sel, vals)
        mirror[start:start + length] = i + 1
    np.testing.assert_array_equal(d.read(AllSelection((extent,))), mirror)
