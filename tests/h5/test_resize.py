"""Resizable-dataset tests (maxshape / resize, HDF5 semantics)."""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.dataspace import UNLIMITED, Dataspace
from repro.h5.errors import ModeError, SelectionError
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL, MetadataVOL
from repro.pfs import PFSStore
from repro.synth import grid_values, producer_grid_selection, validate_grid
from repro.workflow import Workflow


class TestDataspaceMaxshape:
    def test_default_fixed(self):
        sp = Dataspace((3, 4))
        assert sp.maxshape == (3, 4)
        assert not sp.resizable

    def test_unlimited(self):
        sp = Dataspace((3, 4), maxshape=(UNLIMITED, 4))
        assert sp.resizable
        grown = sp.resized((100, 4))
        assert grown.shape == (100, 4)
        assert grown.maxshape == (UNLIMITED, 4)

    def test_bounded_growth(self):
        sp = Dataspace((2,), maxshape=(5,))
        assert sp.resized((5,)).shape == (5,)
        with pytest.raises(SelectionError):
            sp.resized((6,))

    def test_rank_change_rejected(self):
        with pytest.raises(SelectionError):
            Dataspace((2,), maxshape=(2, 2))
        with pytest.raises(SelectionError):
            Dataspace((2, 2), maxshape=(2, 2)).resized((4,))

    def test_maxshape_below_shape_rejected(self):
        with pytest.raises(SelectionError):
            Dataspace((5,), maxshape=(3,))

    def test_encode_decode_keeps_maxshape(self):
        sp = Dataspace((2, 3), maxshape=(UNLIMITED, 3))
        assert Dataspace.decode(sp.encode()) == sp

    def test_fixed_space_resize_rejected(self):
        sp = Dataspace((4,))
        with pytest.raises(SelectionError):
            sp.resized((5,))


class TestDatasetResize:
    def test_grow_preserves_data(self):
        with h5.File("a.h5", "w") as f:
            d = f.create_dataset("d", shape=(2,), dtype="i8",
                                 maxshape=(UNLIMITED,))
            d.write([1, 2])
            d.resize((4,))
            np.testing.assert_array_equal(d.read(), [1, 2, 0, 0])
            d.write([3, 4], file_select=h5.hyperslab((2,), (2,)))
            np.testing.assert_array_equal(d.read(), [1, 2, 3, 4])

    def test_shrink_discards_outside(self):
        with h5.File("a.h5", "w") as f:
            d = f.create_dataset("d", data=np.arange(6),
                                 maxshape=(UNLIMITED,))
            d.resize((3,))
            assert d.shape == (3,)
            np.testing.assert_array_equal(d.read(), [0, 1, 2])

    def test_shrink_clips_straddling_piece(self):
        with h5.File("a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4, 4), dtype="i8",
                                 maxshape=(UNLIMITED, 4))
            d.write(np.arange(8), file_select=h5.hyperslab((1, 0), (2, 4)))
            d.resize((2, 4))
            out = d.read()
            np.testing.assert_array_equal(out[1], [0, 1, 2, 3])
            np.testing.assert_array_equal(out[0], [0, 0, 0, 0])

    def test_shrink_then_regrow_stays_discarded(self):
        with h5.File("a.h5", "w") as f:
            d = f.create_dataset("d", data=np.arange(4),
                                 maxshape=(UNLIMITED,))
            d.resize((2,))
            d.resize((4,))
            np.testing.assert_array_equal(d.read(), [0, 1, 0, 0])

    def test_resize_persists_through_file(self):
        vol = NativeVOL()
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.create_dataset("d", data=[1, 2], maxshape=(UNLIMITED,))
            d.resize((3,))
        with h5.File("a.h5", "r", vol=vol) as f:
            assert f["d"].shape == (3,)
            assert f["d"].maxshape == (UNLIMITED,)

    def test_resize_readonly_rejected(self):
        vol = NativeVOL()
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[1], maxshape=(UNLIMITED,))
        with h5.File("a.h5", "r", vol=vol) as f:
            with pytest.raises(ModeError):
                f["d"].resize((2,))

    def test_resize_in_memory_mode(self):
        vol = MetadataVOL(under=NativeVOL(PFSStore()))
        vol.set_memory("*")
        with h5.File("m.h5", "w", vol=vol) as f:
            d = f.create_dataset("d", data=[5], maxshape=(UNLIMITED,))
            d.resize((2,))
            np.testing.assert_array_equal(d.read(), [5, 0])


class TestResizeInSitu:
    def test_producer_resizes_before_close(self):
        """A grown dataset redistributes correctly in situ."""
        final_shape = (8, 4)

        def producer(ctx):
            def mk():
                vol = DistMetadataVOL(comm=ctx.comm,
                                      under=NativeVOL(PFSStore()))
                vol.set_memory("r.h5")
                vol.serve_on_close("r.h5", ctx.intercomm("consumer"))
                return vol

            vol = ctx.singleton("vol", mk)
            f = h5.File("r.h5", "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("d", shape=(4, 4), dtype="u8",
                                 maxshape=(UNLIMITED, 4))
            d.resize(final_shape)
            sel = producer_grid_selection(final_shape, ctx.rank, ctx.size)
            d.write(grid_values(sel, final_shape), file_select=sel)
            f.close()

        def consumer(ctx):
            def mk():
                vol = DistMetadataVOL(comm=ctx.comm,
                                      under=NativeVOL(PFSStore()))
                vol.set_memory("r.h5")
                vol.set_consumer("r.h5", ctx.intercomm("producer"))
                return vol

            vol = ctx.singleton("vol", mk)
            f = h5.File("r.h5", "r", comm=ctx.comm, vol=vol)
            d = f["d"]
            assert d.shape == final_shape
            vals = d.read(reshape=False)
            f.close()
            return validate_grid(h5.AllSelection(final_shape),
                                 final_shape, vals)

        wf = Workflow()
        wf.add_task("producer", 2, producer)
        wf.add_task("consumer", 1, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run()
        assert res.returns["consumer"] == [True]
