"""Tests for link deletion, require_dataset, and visit."""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.errors import H5Error, ModeError, NotFoundError
from repro.h5.native import NativeVOL
from repro.lowfive import MetadataVOL
from repro.pfs import PFSStore


@pytest.fixture
def vol():
    return NativeVOL()


class TestDelete:
    def test_delete_dataset(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[1])
            del f["d"]
            assert "d" not in f

    def test_delete_group_subtree(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("g/inner/d", data=[1])
            del f["g"]
            assert "g" not in f

    def test_delete_persists_through_close(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("keep", data=[1])
            f.create_dataset("drop", data=[2])
            del f["drop"]
        with h5.File("a.h5", "r", vol=vol) as f:
            assert f.keys() == ["keep"]

    def test_delete_missing_raises(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            with pytest.raises(NotFoundError):
                del f["nope"]

    def test_delete_readonly_raises(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[1])
        with h5.File("a.h5", "r", vol=vol) as f:
            with pytest.raises(ModeError):
                del f["d"]

    def test_delete_then_recreate(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[1], dtype="i4")
            del f["d"]
            f.create_dataset("d", data=[1.5, 2.5])
            np.testing.assert_array_equal(f["d"].read(), [1.5, 2.5])

    def test_delete_in_lowfive_memory_mode(self):
        lf = MetadataVOL(under=NativeVOL(PFSStore()))
        lf.set_memory("*")
        with h5.File("m.h5", "w", vol=lf) as f:
            f.create_dataset("x", data=[1])
            del f["x"]
            assert "x" not in f


class TestRequireDataset:
    def test_creates_when_absent(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            d = f.require_dataset("d", (3,), "f8")
            assert d.shape == (3,)

    def test_returns_existing(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=np.arange(3, dtype="f8"))
            d = f.require_dataset("d", (3,), "f8")
            np.testing.assert_array_equal(d.read(), [0, 1, 2])

    def test_shape_mismatch_raises(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("d", shape=(3,), dtype="f8")
            with pytest.raises(H5Error):
                f.require_dataset("d", (4,), "f8")
            with pytest.raises(H5Error):
                f.require_dataset("d", (3,), "i4")

    def test_group_conflict_raises(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_group("g")
            with pytest.raises(H5Error):
                f.require_dataset("g", (1,), "i1")


class TestVisit:
    def test_visit_all_paths(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("a/x", data=[1])
            f.create_dataset("a/y", data=[1])
            f.create_group("b")
            paths = []
            f.visit(paths.append)
            assert paths == ["a", "a/x", "a/y", "b"]

    def test_visit_early_stop(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("a/x", data=[1])
            f.create_dataset("b/y", data=[1])

            def find_first_dataset(path):
                if "/" in path:
                    return path
                return None

            assert f.visit(find_first_dataset) == "a/x"

    def test_visit_from_subgroup(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            f.create_dataset("g/sub/d", data=[1])
            paths = []
            f["g"].visit(paths.append)
            assert paths == ["sub", "sub/d"]

    def test_visit_empty(self, vol):
        with h5.File("a.h5", "w", vol=vol) as f:
            out = []
            f.visit(out.append)
            assert out == []
