"""Chunked-layout tests: creation, roundtrip, and the cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.h5 as h5
from repro.h5.errors import SelectionError
from repro.h5.native import NativeVOL
from repro.h5.objects import DatasetNode
from repro.h5.dataspace import Dataspace
from repro.h5.selection import (
    AllSelection,
    HyperslabSelection,
    PointSelection,
    chunks_touched,
)
from repro.simmpi import run_world


class TestChunksTouched:
    def test_whole_dataset(self):
        sel = AllSelection((8, 8))
        assert chunks_touched(sel, (4, 4)) == 4
        assert chunks_touched(sel, (8, 8)) == 1
        assert chunks_touched(sel, (3, 3)) == 9

    def test_single_chunk_box(self):
        sel = HyperslabSelection((8, 8), (0, 0), (4, 4))
        assert chunks_touched(sel, (4, 4)) == 1

    def test_straddling_box(self):
        sel = HyperslabSelection((8, 8), (2, 2), (4, 4))
        assert chunks_touched(sel, (4, 4)) == 4

    def test_strided_selection(self):
        sel = HyperslabSelection((16,), 0, 4, stride=4)  # 0,4,8,12
        assert chunks_touched(sel, (4,)) == 4
        assert chunks_touched(sel, (8,)) == 2

    def test_points(self):
        sel = PointSelection((8, 8), [(0, 0), (0, 1), (7, 7)])
        assert chunks_touched(sel, (4, 4)) == 2

    def test_empty(self):
        from repro.h5.selection import NoneSelection

        assert chunks_touched(NoneSelection((4,)), (2,)) == 0

    def test_validation(self):
        with pytest.raises(SelectionError):
            chunks_touched(AllSelection((4,)), (0,))
        with pytest.raises(SelectionError):
            chunks_touched(AllSelection((4,)), (2, 2))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 5),
           st.integers(1, 5))
    def test_prop_matches_bruteforce(self, rows, cols, c0, c1):
        sel = AllSelection((rows, cols))
        got = chunks_touched(sel, (c0, c1))
        brute = {(x // c0, y // c1) for x in range(rows)
                 for y in range(cols)}
        assert got == len(brute)


class TestChunkedDataset:
    def test_create_validates_chunk_shape(self):
        with pytest.raises(SelectionError):
            DatasetNode("d", h5.FLOAT64, Dataspace((4, 4)), chunks=(4,))
        with pytest.raises(SelectionError):
            DatasetNode("d", h5.FLOAT64, Dataspace((4,)), chunks=(0,))

    def test_roundtrip_through_file(self):
        vol = NativeVOL()
        with h5.File("c.h5", "w", vol=vol) as f:
            f.create_dataset("d", shape=(8, 8), dtype="f8", chunks=(2, 4))
        with h5.File("c.h5", "r", vol=vol) as f:
            assert f["d"]._token.node.chunks == (2, 4)

    def test_unchunked_default(self):
        vol = NativeVOL()
        with h5.File("c.h5", "w", vol=vol) as f:
            f.create_dataset("d", shape=(4,), dtype="i1")
            assert f["d"]._token.node.chunks is None

    def test_data_roundtrip_same_as_contiguous(self):
        vol = NativeVOL()
        with h5.File("c.h5", "w", vol=vol) as f:
            d = f.create_dataset("d", shape=(6, 6), dtype="i8",
                                 chunks=(3, 3))
            d.write(np.arange(36))
        with h5.File("c.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(
                f["d"].read().reshape(-1), np.arange(36)
            )


class TestChunkCosts:
    def _write_time(self, chunks, start):
        vol = NativeVOL()

        def main(comm):
            f = h5.File("c.h5", "w", comm=comm, vol=vol)
            d = f.create_dataset("d", shape=(64, 64), dtype="f8",
                                 chunks=chunks)
            t0 = comm.vtime
            d.write(np.zeros(16 * 16),
                    file_select=h5.hyperslab(start, (16, 16)))
            dt = comm.vtime - t0
            f.close()
            return dt

        return run_world(2, main).returns[0]

    def test_aligned_write_cheaper_than_straddling(self):
        aligned = self._write_time((16, 16), (16, 16))    # exactly 1 chunk
        straddle = self._write_time((16, 16), (8, 8))     # 4 partial chunks
        assert straddle > aligned

    def test_fine_chunks_cost_more_metadata(self):
        coarse = self._write_time((16, 16), (0, 0))
        fine = self._write_time((2, 2), (0, 0))  # 64 chunks touched
        assert fine > coarse
