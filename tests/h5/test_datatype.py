"""Datatype tests."""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.datatype import (
    CLASS_COMPOUND,
    CLASS_FLOAT,
    CLASS_INTEGER,
    CLASS_STRING,
    as_datatype,
)


def test_predefined_types():
    assert h5.UINT64.itemsize == 8
    assert h5.FLOAT32.itemsize == 4
    assert h5.INT8.itemsize == 1
    assert h5.UINT64.type_class == CLASS_INTEGER
    assert h5.FLOAT64.type_class == CLASS_FLOAT


def test_string_type():
    s = h5.string_(16)
    assert s.itemsize == 16
    assert s.type_class == CLASS_STRING
    with pytest.raises(ValueError):
        h5.string_(0)


def test_compound_type():
    particle = h5.compound([("x", h5.FLOAT32), ("y", h5.FLOAT32),
                            ("z", h5.FLOAT32), ("id", h5.UINT64)])
    assert particle.type_class == CLASS_COMPOUND
    assert particle.is_compound
    assert particle.itemsize == 20
    fields = particle.fields
    assert set(fields) == {"x", "y", "z", "id"}
    ftype, offset = fields["z"]
    assert ftype == h5.FLOAT32 and offset == 8


def test_compound_fields_on_atomic_raises():
    with pytest.raises(h5.H5Error):
        h5.UINT64.fields


def test_encode_decode_roundtrip_atomic():
    for t in (h5.INT8, h5.INT16, h5.INT32, h5.INT64, h5.UINT8, h5.UINT16,
              h5.UINT32, h5.UINT64, h5.FLOAT32, h5.FLOAT64, h5.string_(4)):
        assert h5.Datatype.decode(t.encode()) == t


def test_encode_decode_roundtrip_compound():
    t = h5.compound([("pos", "3f4"), ("mass", h5.FLOAT64)])
    assert h5.Datatype.decode(t.encode()) == t


def test_equality_and_hash():
    assert h5.Datatype("u8") == h5.UINT64
    assert hash(h5.Datatype("u8")) == hash(h5.UINT64)
    assert h5.UINT64 != h5.INT64
    assert (h5.UINT64 == 42) is False


def test_immutability():
    with pytest.raises(AttributeError):
        h5.UINT64.np = np.dtype("i1")


def test_as_datatype_coercions():
    assert as_datatype("f8") == h5.FLOAT64
    assert as_datatype(np.float32) == h5.FLOAT32
    assert as_datatype(h5.UINT8) is h5.UINT8


def test_unsupported_kind_rejected():
    t = h5.Datatype(np.dtype("O"))
    with pytest.raises(h5.H5Error):
        t.type_class
