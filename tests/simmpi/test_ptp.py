"""Point-to-point messaging tests for the simulated MPI runtime."""

import numpy as np
import pytest

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    Engine,
    NetworkModel,
    VirtualPayload,
    run_world,
)
from repro.simmpi.request import wait_all


def test_send_recv_roundtrip():
    def main(comm):
        if comm.rank == 0:
            comm.send({"x": 1}, dest=1, tag=5)
            payload, status = comm.recv(source=1, tag=6)
            assert payload == "reply"
            assert status.source == 1 and status.tag == 6
        elif comm.rank == 1:
            payload, status = comm.recv(source=0, tag=5)
            assert payload == {"x": 1}
            comm.send("reply", dest=0, tag=6)

    run_world(2, main)


def test_numpy_payload_moves_data_and_bytes():
    def main(comm):
        if comm.rank == 0:
            arr = np.arange(1000, dtype=np.float64)
            comm.send(arr, dest=1)
        else:
            arr, status = comm.recv(source=0)
            assert status.nbytes == 8000
            np.testing.assert_array_equal(arr, np.arange(1000, dtype=np.float64))

    res = run_world(2, main)
    assert res.bytes_sent == 8000
    assert res.messages == 1


def test_tag_matching_out_of_order():
    def main(comm):
        if comm.rank == 0:
            comm.send("a", dest=1, tag=1)
            comm.send("b", dest=1, tag=2)
        else:
            b, _ = comm.recv(source=0, tag=2)
            a, _ = comm.recv(source=0, tag=1)
            assert (a, b) == ("a", "b")

    run_world(2, main)


def test_any_source_any_tag():
    def main(comm):
        if comm.rank == 0:
            got = set()
            for _ in range(3):
                payload, status = comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.add((status.source, payload))
            assert got == {(1, "one"), (2, "two"), (3, "three")}
        else:
            names = {1: "one", 2: "two", 3: "three"}
            comm.send(names[comm.rank], dest=0, tag=comm.rank)

    run_world(4, main)


def test_fifo_per_source_and_tag():
    def main(comm):
        if comm.rank == 0:
            for i in range(10):
                comm.send(i, dest=1, tag=0)
        else:
            seq = [comm.recv(source=0, tag=0)[0] for _ in range(10)]
            assert seq == list(range(10))

    run_world(2, main)


def test_nonblocking_isend_irecv():
    def main(comm):
        if comm.rank == 0:
            reqs = [comm.isend(i * 10, dest=1, tag=i) for i in range(4)]
            wait_all(reqs)
        else:
            reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
            results = wait_all(reqs)
            assert [p for p, _ in results] == [0, 10, 20, 30]

    run_world(2, main)


def test_request_test_polls():
    def main(comm):
        if comm.rank == 0:
            comm.send("x", dest=1)
        else:
            req = comm.irecv(source=0)
            # Eventually completes via test().
            while True:
                done, result = req.test()
                if done:
                    payload, status = result
                    assert payload == "x"
                    break

    run_world(2, main)


def test_probe_nonblocking_and_blocking():
    def main(comm):
        if comm.rank == 0:
            comm.barrier()
            comm.send(b"xyz", dest=1, tag=9)
        else:
            assert comm.probe(source=0, tag=9, block=False) is None
            comm.barrier()
            status = comm.probe(source=0, tag=9)  # blocking
            assert status.nbytes == 3
            payload, _ = comm.recv(source=0, tag=9)
            assert payload == b"xyz"

    run_world(2, main)


def test_virtual_payload_costs_without_data():
    def main(comm):
        if comm.rank == 0:
            comm.send(VirtualPayload(10**9, "big"), dest=1)
        else:
            p, status = comm.recv(source=0)
            assert status.nbytes == 10**9
            assert p.label == "big"

    res = run_world(2, main)
    # 1 GB at 8 GB/s -> at least 0.125 virtual seconds.
    assert res.vtime >= 0.1


def test_explicit_nbytes_override():
    def main(comm):
        if comm.rank == 0:
            comm.send("tiny", dest=1, nbytes=10**8)
        else:
            comm.recv(source=0)

    res = run_world(2, main)
    assert res.bytes_sent == 10**8


def test_vtime_reflects_transfer_cost():
    model = NetworkModel(latency=1e-3, bandwidth=1e6)

    def main(comm):
        if comm.rank == 0:
            comm.send(np.zeros(1000, dtype=np.uint8), dest=1)
        else:
            comm.recv(source=0)

    res = run_world(2, main, model=model)
    # latency 1 ms + 1000 B / 1 MB/s = 2 ms, plus small overheads.
    assert 2e-3 <= res.vtime < 3e-3


def test_deadlock_detection():
    def main(comm):
        if comm.rank == 0:
            comm.recv(source=1)  # never sent

    with pytest.raises(DeadlockError):
        run_world(2, main, timeout=0.5)


def test_exception_propagates_from_rank():
    def main(comm):
        if comm.rank == 1:
            raise RuntimeError("boom on rank 1")
        comm.recv(source=1)  # would deadlock, but failure should wake us

    with pytest.raises(RuntimeError, match="boom on rank 1"):
        run_world(2, main, timeout=5.0)


def test_self_send():
    def main(comm):
        comm.send("me", dest=comm.rank, tag=1)
        p, status = comm.recv(source=comm.rank, tag=1)
        assert p == "me" and status.source == comm.rank

    run_world(3, main)


def test_engine_reuse_forbidden_semantics():
    # Engines are single-run; a second run on a fresh engine is the pattern.
    eng = Engine(2)
    res = eng.run(lambda comm: comm.rank)
    assert res.returns == [0, 1]
