"""Collective-operation tests for the simulated MPI runtime."""

import operator

import numpy as np
import pytest

from repro.simmpi import run_world


def test_barrier_synchronizes_clocks():
    def main(comm):
        comm.compute(0.1 * comm.rank)  # ranks drift apart
        comm.barrier()
        return comm.vtime

    res = run_world(4, main)
    # After the barrier all clocks share the same value.
    assert len({round(t, 12) for t in res.returns}) == 1
    assert res.returns[0] >= 0.3  # at least the slowest rank's work


def test_bcast():
    def main(comm):
        data = {"grid": [1, 2, 3]} if comm.rank == 0 else None
        return comm.bcast(data, root=0)

    res = run_world(4, main)
    assert all(r == {"grid": [1, 2, 3]} for r in res.returns)


def test_bcast_nonzero_root():
    def main(comm):
        data = "payload" if comm.rank == 2 else None
        return comm.bcast(data, root=2)

    res = run_world(4, main)
    assert res.returns == ["payload"] * 4


def test_gather():
    def main(comm):
        out = comm.gather(comm.rank * 2, root=1)
        if comm.rank == 1:
            assert out == [0, 2, 4, 6]
        else:
            assert out is None

    run_world(4, main)


def test_allgather():
    def main(comm):
        return comm.allgather(chr(ord("a") + comm.rank))

    res = run_world(3, main)
    assert res.returns == [["a", "b", "c"]] * 3


def test_scatter():
    def main(comm):
        items = [10, 11, 12, 13] if comm.rank == 0 else None
        return comm.scatter(items, root=0)

    res = run_world(4, main)
    assert res.returns == [10, 11, 12, 13]


def test_scatter_requires_full_list():
    def main(comm):
        items = [1] if comm.rank == 0 else None
        return comm.scatter(items, root=0)

    with pytest.raises(ValueError):
        run_world(2, main)


def test_alltoall():
    def main(comm):
        sends = [f"{comm.rank}->{j}" for j in range(comm.size)]
        return comm.alltoall(sends)

    res = run_world(3, main)
    for i, received in enumerate(res.returns):
        assert received == [f"{j}->{i}" for j in range(3)]


def test_reduce_sum_and_custom_op():
    def main(comm):
        s = comm.reduce(comm.rank + 1, root=0)
        m = comm.reduce(comm.rank + 1, op=max, root=0)
        return s, m

    res = run_world(4, main)
    assert res.returns[0] == (10, 4)
    assert res.returns[1] == (None, None)


def test_allreduce():
    def main(comm):
        return comm.allreduce(comm.rank, op=operator.add)

    res = run_world(5, main)
    assert res.returns == [10] * 5


def test_allreduce_numpy():
    def main(comm):
        return comm.allreduce(np.full(4, comm.rank))

    res = run_world(3, main)
    for r in res.returns:
        np.testing.assert_array_equal(r, np.full(4, 3))


def test_repeated_collectives_generations():
    def main(comm):
        acc = []
        for i in range(20):
            acc.append(comm.allreduce(i + comm.rank))
        return acc

    res = run_world(3, main)
    expected = [3 * i + 3 for i in range(20)]
    assert res.returns == [expected] * 3


def test_collective_advances_all_clocks_equally():
    def main(comm):
        comm.compute(0.05 if comm.rank == 0 else 0.0)
        comm.allgather(comm.rank)
        return comm.vtime

    res = run_world(4, main)
    assert len({round(t, 12) for t in res.returns}) == 1


def test_split_by_color():
    def main(comm):
        color = comm.rank % 2
        sub = comm.split(color)
        assert sub.size == 3
        members = sub.allgather(comm.rank)
        if color == 0:
            assert members == [0, 2, 4]
        else:
            assert members == [1, 3, 5]
        return sub.rank

    res = run_world(6, main)
    assert res.returns == [0, 0, 1, 1, 2, 2]


def test_split_with_key_reorders():
    def main(comm):
        sub = comm.split(0, key=-comm.rank)  # reverse order
        return sub.rank

    res = run_world(4, main)
    assert res.returns == [3, 2, 1, 0]


def test_split_none_opts_out():
    def main(comm):
        color = None if comm.rank == 0 else 1
        sub = comm.split(color)
        if comm.rank == 0:
            assert sub is None
            return -1
        return sub.size

    res = run_world(4, main)
    assert res.returns == [-1, 3, 3, 3]


def test_dup_isolated_context():
    def main(comm):
        dup = comm.dup()
        if comm.rank == 0:
            comm.send("on-orig", dest=1, tag=0)
            dup.send("on-dup", dest=1, tag=0)
        elif comm.rank == 1:
            # The dup'd communicator only sees its own traffic.
            d, _ = dup.recv(source=0, tag=0)
            o, _ = comm.recv(source=0, tag=0)
            assert (d, o) == ("on-dup", "on-orig")

    run_world(2, main)


def test_nested_split_communicators():
    def main(comm):
        half = comm.split(comm.rank // 2)
        quarter = half.split(half.rank % 2)
        return (half.size, quarter.size)

    res = run_world(4, main)
    assert res.returns == [(2, 1)] * 4
