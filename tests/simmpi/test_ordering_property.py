"""Hypothesis properties of the message-passing semantics."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.simmpi import run_world


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 3), min_size=1, max_size=20),
       st.integers(2, 4))
def test_prop_fifo_per_source_tag_pair(tags, nprocs):
    """Messages between one (source, tag) pair arrive in send order,
    regardless of interleaving with other tags."""
    def main(comm):
        if comm.rank == 0:
            for seq, tag in enumerate(tags):
                comm.send((tag, seq), dest=1, tag=tag)
        elif comm.rank == 1:
            per_tag = {}
            for _ in range(len(tags)):
                (tag, seq), status = comm.recv(source=0)
                per_tag.setdefault(status.tag, []).append(seq)
                assert tag == status.tag
            for got in per_tag.values():
                assert got == sorted(got)
            return per_tag

    run_world(nprocs, main)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 5), st.integers(1, 8))
def test_prop_all_sent_messages_received(nprocs, k):
    """Conservation: every message sent is received exactly once."""
    def main(comm):
        if comm.rank == 0:
            for dest in range(1, comm.size):
                for i in range(k):
                    comm.send((dest, i), dest=dest, tag=i)
            return None
        got = [comm.recv(source=0)[0] for _ in range(k)]
        assert sorted(got) == [(comm.rank, i) for i in range(k)]
        return len(got)

    res = run_world(nprocs, main)
    assert res.messages == (nprocs - 1) * k
    assert all(r == k for r in res.returns[1:])


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 5), st.integers(0, 10**6))
def test_prop_clocks_monotone_through_collectives(nprocs, seed):
    """Virtual clocks never go backwards across mixed op sequences."""
    def main(comm):
        # Same seed everywhere: collective sequences must match ranks.
        rng = np.random.default_rng(seed)
        last = comm.vtime
        for op in rng.integers(0, 3, size=6):
            if op == 0:
                comm.compute(float(rng.random()) * 1e-3 * (comm.rank + 1))
            elif op == 1:
                comm.allgather(comm.rank)
            else:
                comm.barrier()
            assert comm.vtime >= last
            last = comm.vtime
        return last

    run_world(nprocs, main)
