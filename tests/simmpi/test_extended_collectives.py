"""Tests for the extended collective set: scans, reduce_scatter,
sendrecv, vector variants."""

import operator

import numpy as np
import pytest

from repro.simmpi import run_world


def test_sendrecv_ring_shift():
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        payload, status = comm.sendrecv(
            f"from-{comm.rank}", dest=right, source=left,
            sendtag=5, recvtag=5,
        )
        assert status.source == left
        return payload

    res = run_world(4, main)
    assert res.returns == ["from-3", "from-0", "from-1", "from-2"]


def test_scan_inclusive():
    def main(comm):
        return comm.scan(comm.rank + 1)

    res = run_world(5, main)
    assert res.returns == [1, 3, 6, 10, 15]


def test_scan_custom_op():
    def main(comm):
        return comm.scan(comm.rank + 1, op=operator.mul)

    res = run_world(4, main)
    assert res.returns == [1, 2, 6, 24]


def test_exscan():
    def main(comm):
        return comm.exscan(comm.rank + 1, initial=0)

    res = run_world(4, main)
    assert res.returns == [0, 1, 3, 6]


def test_exscan_default_initial_none():
    def main(comm):
        return comm.exscan(10)

    res = run_world(3, main)
    assert res.returns == [None, 10, 20]


def test_exscan_offsets_use_case():
    """The classic pattern: global offsets from local counts."""
    counts = [3, 1, 4, 1, 5]

    def main(comm):
        return comm.exscan(counts[comm.rank], initial=0)

    res = run_world(5, main)
    assert res.returns == [0, 3, 4, 8, 9]


def test_reduce_scatter():
    def main(comm):
        contrib = [comm.rank * 10 + j for j in range(comm.size)]
        return comm.reduce_scatter(contrib)

    res = run_world(3, main)
    # rank j receives sum_i (i*10 + j)
    assert res.returns == [30 + 0 * 3, 30 + 3, 30 + 6]


def test_reduce_scatter_validates_length():
    def main(comm):
        return comm.reduce_scatter([1])

    with pytest.raises(ValueError):
        run_world(2, main)


def test_reduce_scatter_numpy():
    def main(comm):
        contrib = [np.full(2, comm.rank + 1) for _ in range(comm.size)]
        return comm.reduce_scatter(contrib)

    res = run_world(3, main)
    for r in res.returns:
        np.testing.assert_array_equal(r, [6, 6])


def test_gatherv_scatterv_variable_sizes():
    def main(comm):
        chunk = list(range(comm.rank + 1))  # sizes 1, 2, 3
        gathered = comm.gatherv(chunk, root=0)
        if comm.rank == 0:
            assert gathered == [[0], [0, 1], [0, 1, 2]]
            spread = comm.scatterv([["a"], ["b"] * 2, ["c"] * 3], root=0)
        else:
            spread = comm.scatterv(None, root=0)
        return len(spread)

    res = run_world(3, main)
    assert res.returns == [1, 2, 3]


def test_alltoallv():
    def main(comm):
        sends = [[comm.rank] * (j + 1) for j in range(comm.size)]
        recv = comm.alltoallv(sends)
        # From rank j we receive a list of length rank+1 filled with j.
        return [(len(x), x[0] if x else None) for x in recv]

    res = run_world(3, main)
    for i, got in enumerate(res.returns):
        assert got == [(i + 1, 0), (i + 1, 1), (i + 1, 2)]


def test_scan_advances_clocks_uniformly():
    def main(comm):
        comm.scan(1)
        return round(comm.vtime, 12)

    res = run_world(4, main)
    assert len(set(res.returns)) == 1
