"""Intercommunicator tests: the producer/consumer wiring LowFive relies on."""

import numpy as np
import pytest

from repro.simmpi import Engine, Intercomm
from repro.simmpi.errors import CommMismatchError


def run_with_intercomm(nprocs, group_a, group_b, main):
    """Launch ``main(world, local, inter)`` with A/B groups pre-wired."""
    eng = Engine(nprocs)
    ab, ba = Intercomm.create(eng, group_a, group_b)

    def runner(world):
        if world.rank in group_a:
            local = world.split(0)
            return main(world, local, ab, "a")
        local = world.split(1)
        return main(world, local, ba, "b")

    return eng.run(runner)


def test_intercomm_basic_exchange():
    def main(world, local, inter, side):
        if side == "a":
            # Each producer sends to consumer 0.
            inter.send((side, local.rank), dest=0, tag=1)
        else:
            if local.rank == 0:
                got = sorted(
                    inter.recv(source=i, tag=1)[0] for i in range(inter.remote_size)
                )
                assert got == [("a", 0), ("a", 1), ("a", 2)]

    run_with_intercomm(4, [0, 1, 2], [3], main)


def test_intercomm_remote_addressing_is_group_local():
    def main(world, local, inter, side):
        if side == "a":
            # dest=1 means rank 1 of the *remote* group (world rank 4).
            if local.rank == 0:
                inter.send("hello", dest=1)
        else:
            if local.rank == 1:
                payload, status = inter.recv(source=0)
                assert payload == "hello"
                assert status.source == 0  # sender's rank in its group
            return local.rank

    run_with_intercomm(5, [0, 1, 2], [3, 4], main)


def test_intercomm_sizes():
    def main(world, local, inter, side):
        if side == "a":
            assert inter.size == 3 and inter.remote_size == 2
        else:
            assert inter.size == 2 and inter.remote_size == 3

    run_with_intercomm(5, [0, 1, 2], [3, 4], main)


def test_intercomm_barrier_spans_groups():
    def main(world, local, inter, side):
        if side == "a":
            world_rank = world.rank
            inter.compute(0.1 * (world_rank + 1))
        inter.barrier()
        return inter.vtime

    res = run_with_intercomm(4, [0, 1], [2, 3], main)
    assert len({round(t, 12) for t in res.returns}) == 1


def test_intercomm_bidirectional():
    def main(world, local, inter, side):
        if side == "a":
            inter.send(np.arange(10), dest=0, tag=2)
            reply, _ = inter.recv(source=0, tag=3)
            assert reply == "ok"
        else:
            arr, _ = inter.recv(source=0, tag=2)
            np.testing.assert_array_equal(arr, np.arange(10))
            inter.send("ok", dest=0, tag=3)

    run_with_intercomm(2, [0], [1], main)


def test_intercomm_overlapping_groups_rejected():
    eng = Engine(3)
    with pytest.raises(CommMismatchError):
        Intercomm(eng, [0, 1], [1, 2])


def test_intercomm_out_of_range_dest():
    def main(world, local, inter, side):
        if side == "a" and local.rank == 0:
            with pytest.raises(CommMismatchError):
                inter.send("x", dest=5)

    run_with_intercomm(2, [0], [1], main)


def test_intercomm_no_split_or_dup():
    def main(world, local, inter, side):
        if local.rank == 0:
            with pytest.raises(NotImplementedError):
                inter.split(0)
            with pytest.raises(NotImplementedError):
                inter.dup()

    run_with_intercomm(2, [0], [1], main)


def test_two_intercomms_fan_out():
    """One producer group feeding two consumer groups (fan-out)."""
    eng = Engine(4)
    prod = [0, 1]
    cons1, cons2 = [2], [3]
    p_c1, c1_p = Intercomm.create(eng, prod, cons1)
    p_c2, c2_p = Intercomm.create(eng, prod, cons2)

    def main(world):
        r = world.rank
        if r in prod:
            local = world.split(0)
            p_c1.send(("to-c1", r), dest=0)
            p_c2.send(("to-c2", r), dest=0)
        elif r in cons1:
            world.split(1)
            got = sorted(c1_p.recv(source=i)[0] for i in range(2))
            assert got == [("to-c1", 0), ("to-c1", 1)]
        else:
            world.split(2)
            got = sorted(c2_p.recv(source=i)[0] for i in range(2))
            assert got == [("to-c2", 0), ("to-c2", 1)]

    eng.run(main)
