"""Cost-model unit and property tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simmpi import NetworkModel, VirtualPayload, payload_nbytes


class TestPayloadNbytes:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_numpy(self):
        assert payload_nbytes(np.zeros((10, 10), dtype=np.float32)) == 400

    def test_bytes(self):
        assert payload_nbytes(b"12345") == 5
        assert payload_nbytes(bytearray(7)) == 7

    def test_str(self):
        assert payload_nbytes("abc") == 3

    def test_scalars(self):
        assert payload_nbytes(1) == 8
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(True) == 8

    def test_virtual_payload(self):
        assert payload_nbytes(VirtualPayload(12345)) == 12345

    def test_containers_include_items(self):
        base = payload_nbytes([])
        assert payload_nbytes([np.zeros(100)]) >= 800 + base
        assert payload_nbytes({"k": np.zeros(10)}) >= 80

    def test_unknown_object_flat_estimate(self):
        class Foo:
            pass

        assert payload_nbytes(Foo()) == 64


class TestNetworkModel:
    def test_transfer_time_alpha_beta(self):
        m = NetworkModel(latency=1e-6, bandwidth=1e9, contention_exponent=0.0)
        assert m.transfer_time(0) == pytest.approx(1e-6)
        assert m.transfer_time(10**9) == pytest.approx(1.0 + 1e-6)

    def test_contention_grows_with_procs(self):
        m = NetworkModel()
        assert m.contention_factor(4) == 1.0
        assert m.contention_factor(16384) > m.contention_factor(1024) > 1.0

    def test_contention_below_ref_is_one(self):
        m = NetworkModel()
        assert m.contention_factor(1) == 1.0
        assert m.contention_factor(2) == 1.0

    def test_memcpy_and_pack(self):
        m = NetworkModel(memcpy_bandwidth=2e9, per_element_pack=1e-8)
        assert m.memcpy_time(2e9) == pytest.approx(1.0)
        assert m.pack_elements_time(10**8) == pytest.approx(1.0)

    def test_collective_costs_scale_logarithmically(self):
        m = NetworkModel()
        t64 = m.collective_time("barrier", 64)
        t4096 = m.collective_time("barrier", 4096)
        assert t4096 == pytest.approx(t64 * 2, rel=0.01)  # log2 64=6, 4096=12

    def test_collective_single_rank_cheap(self):
        m = NetworkModel()
        assert m.collective_time("barrier", 1) == m.msg_overhead

    def test_unknown_collective_raises(self):
        m = NetworkModel()
        with pytest.raises(ValueError):
            m.collective_time("frobnicate", 8)

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=1, max_value=1 << 20))
    def test_transfer_time_monotone_in_bytes(self, nbytes, nprocs):
        m = NetworkModel()
        assert m.transfer_time(nbytes, nprocs) <= m.transfer_time(
            nbytes + 1024, nprocs
        )

    @given(st.sampled_from(["barrier", "bcast", "gather", "allgather",
                            "alltoall", "reduce", "allreduce", "scatter"]),
           st.integers(min_value=2, max_value=1 << 16),
           st.integers(min_value=0, max_value=10**9))
    def test_collective_time_positive_finite(self, kind, p, nbytes):
        m = NetworkModel()
        t = m.collective_time(kind, p, nbytes)
        assert t > 0 and math.isfinite(t)
