"""Scheduler semantics: wildcard ordering, targeted wakeups, determinism.

The engine's hot path was rebuilt around indexed mailboxes and
event-driven, filtered wakeups; these tests pin down the semantics the
rebuild must preserve -- wildcard matching order, wakeup correctness
under fault-injected duplicates and delays, and run-to-run determinism
-- plus a perf smoke test asserting that receive matching does no work
proportional to unrelated queued traffic.
"""

import pytest

from repro.faults import FaultPlan, MessageFaultRule
from repro.simmpi import ANY_SOURCE, ANY_TAG, Engine, run_world


def _mailbox_examined(engine: Engine) -> int:
    """Total bucket heads inspected by matching across all ranks."""
    return sum(mbox.examined
               for p in engine.procs
               for mbox in p.mailbox.values())


class TestWildcardOrdering:
    def test_any_source_follows_arrival_order(self):
        """A wildcard receive takes the queued message with the
        earliest (arrival, src, seq), not FIFO-of-delivery."""

        def main(comm):
            if comm.rank == 0:
                comm.barrier()
                got = [comm.recv(source=ANY_SOURCE, tag=0)[0]
                       for _ in range(comm.size - 1)]
                # Rank k computed (size - k) ms before sending, so
                # arrival order is the *reverse* of rank order.
                assert got == sorted(
                    got, key=lambda payload: -payload
                )
                return got
            comm.compute((comm.size - comm.rank) * 1e-3)
            comm.send(comm.rank, dest=0, tag=0)
            comm.barrier()

        run_world(5, main)

    def test_any_tag_prefers_earlier_arrival(self):
        def main(comm):
            if comm.rank == 1:
                # Big payload first: its wire time makes it arrive
                # *after* the small message sent later.
                comm.send(bytes(2_000_000), dest=0, tag=7)
                comm.send(b"x", dest=0, tag=8)
                comm.barrier()
            elif comm.rank == 0:
                comm.barrier()
                _, st1 = comm.recv(source=1, tag=ANY_TAG)
                _, st2 = comm.recv(source=1, tag=ANY_TAG)
                assert (st1.tag, st2.tag) == (8, 7)
            else:
                comm.barrier()

        run_world(2, main)

    def test_arrival_tie_breaks_by_source_rank(self):
        """Equal arrivals resolve by the lower sender rank."""

        def main(comm):
            if comm.rank == 0:
                comm.barrier()
                sources = [comm.recv()[1].source
                           for _ in range(comm.size - 1)]
                assert sources == sorted(sources)
            else:
                # Identical payloads and clocks: identical arrivals.
                comm.send(b"tie", dest=0)
                comm.barrier()

        run_world(4, main)


class TestTargetedWakeups:
    def test_blocked_recv_survives_nonmatching_flood(self):
        """A rank waiting on a specific (source, tag) must still be
        woken by its one matching message arriving after a flood of
        non-matching traffic -- with a timeout short enough that a
        missed wakeup would be a DeadlockError."""

        def main(comm):
            if comm.rank == 0:
                # Blocks immediately; the match arrives last.
                payload, st = comm.recv(source=comm.size - 1, tag=99)
                assert payload == "the-one" and st.tag == 99
                for src in range(1, comm.size - 1):
                    for k in range(10):
                        comm.recv(source=src, tag=0)
                return True
            if comm.rank < comm.size - 1:
                for k in range(10):
                    comm.send((comm.rank, k), dest=0, tag=0)
            else:
                comm.compute(1e-3)  # send the match last in real time too
                comm.send("the-one", dest=0, tag=99)
            return True

        res = run_world(6, main, timeout=10.0)
        assert all(res.returns)

    def test_wildcard_waiter_woken_by_any_match(self):
        def main(comm):
            if comm.rank == 0:
                payload, _ = comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                assert payload == "hello"
            elif comm.rank == 1:
                import time

                time.sleep(0.05)  # ensure rank 0 is already blocked  # noqa: ANL001
                comm.send("hello", dest=0, tag=3)

        run_world(2, main, timeout=10.0)

    def test_probe_woken_while_blocked(self):
        def main(comm):
            if comm.rank == 0:
                st = comm.probe(source=1, tag=4)
                assert (st.source, st.tag) == (1, 4)
                payload, _ = comm.recv(source=1, tag=4)
                assert payload == "probed"
            else:
                import time

                time.sleep(0.05)  # noqa: ANL001 - real stall exercises the watchdog
                comm.send("probed", dest=0, tag=4)

        run_world(2, main, timeout=10.0)

    def test_wakeups_correct_under_duplicates_and_delays(self):
        """Fault-injected duplicates and delays reorder and clone
        traffic; matching must still consume each logical message
        exactly once and never hang on a duplicate."""
        rules = [MessageFaultRule(p_delay=0.5, max_delay=5e-4,
                                  p_duplicate=0.5)]

        def main(comm):
            if comm.rank == 0:
                seen = []
                for _ in range(3 * (comm.size - 1)):
                    payload, _ = comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                    seen.append(payload)
                assert sorted(seen) == sorted(
                    (src, k) for src in range(1, comm.size)
                    for k in range(3)
                )
                return len(seen)
            for k in range(3):
                comm.send((comm.rank, k), dest=0, tag=k)
            return 0

        res = run_world(4, main, timeout=10.0,
                        faults=FaultPlan(11, messages=rules))
        assert res.returns[0] == 9

    def test_specific_recv_with_duplicates(self):
        rules = [MessageFaultRule(p_duplicate=1.0)]

        def main(comm):
            if comm.rank == 0:
                for src in range(comm.size - 1, 0, -1):
                    payload, _ = comm.recv(source=src, tag=src)
                    assert payload == src * 10
                # Duplicates were deduped: nothing is left to probe.
                assert comm.probe(block=False) is None
            else:
                comm.send(comm.rank * 10, dest=0, tag=comm.rank)

        run_world(4, main, timeout=10.0,
                  faults=FaultPlan(5, messages=rules))


class TestDeterminism:
    def test_repeated_runs_identical(self):
        """Same program, same seed => bit-identical virtual results,
        independent of thread scheduling."""

        def main(comm):
            me = comm.rank
            comm.compute(1e-4 * (me + 1))
            right = (me + 1) % comm.size
            left = (me - 1) % comm.size
            comm.send(me, dest=right, tag=1)
            got, _ = comm.recv(source=left, tag=1)
            total = comm.allreduce(got)
            comm.barrier()
            return total

        results = [run_world(8, main) for _ in range(3)]
        first = results[0]
        for res in results[1:]:
            assert res.vtime == first.vtime  # noqa: ANL004
            assert res.clocks == first.clocks
            assert res.messages == first.messages
            assert res.bytes_sent == first.bytes_sent
            assert res.returns == first.returns

    def test_faulty_runs_deterministic(self):
        rules = [MessageFaultRule(p_delay=0.4, max_delay=1e-3,
                                  p_duplicate=0.3)]

        def main(comm):
            # Rendezvous before receiving: with every message already
            # queued, wildcard matching order -- and hence the clock
            # trajectory -- is a pure function of the fault plan.
            if comm.rank == 0:
                comm.barrier()
                return [comm.recv()[0] for _ in range(comm.size - 1)]
            comm.send(comm.rank, dest=0, tag=comm.rank % 2)
            comm.barrier()
            return None

        runs = [
            run_world(5, main, faults=FaultPlan(21, messages=rules),
                      timeout=10.0)
            for _ in range(2)
        ]
        assert runs[0].vtime == runs[1].vtime  # noqa: ANL004
        assert runs[0].clocks == runs[1].clocks
        assert runs[0].returns[0] == runs[1].returns[0]


class TestMatchingCost:
    """Perf smoke: matching work must not scale with unrelated traffic."""

    @staticmethod
    def _run_flood(n_unrelated: int) -> int:
        """Rank 0 receives 10 (source=1, tag=5) messages while rank 2
        floods it with ``n_unrelated`` messages it never matches.
        Returns the bucket heads examined by rank 0's matching."""
        eng = Engine(3, timeout=30.0)

        def main(comm):
            if comm.rank == 0:
                comm.barrier()
                for _ in range(10):
                    comm.recv(source=1, tag=5)
                return True
            if comm.rank == 1:
                for k in range(10):
                    comm.send(k, dest=0, tag=5)
            else:
                for k in range(n_unrelated):
                    comm.send(k, dest=0, tag=1000 + (k % 16))
            comm.barrier()
            return True

        eng.run(main)
        return _mailbox_examined(eng)

    def test_examined_heads_independent_of_unrelated_queue(self):
        small = self._run_flood(20)
        large = self._run_flood(2000)
        # Fully-qualified matching inspects exactly one bucket head per
        # attempt regardless of how much unrelated traffic is queued.
        assert large <= small + 16, (small, large)

    def test_wildcard_scales_with_buckets_not_messages(self):
        """ANY_SOURCE matching may inspect one head per candidate
        bucket, but never one per queued message."""
        n_unrelated = 3000
        eng = Engine(3, timeout=30.0)

        def main(comm):
            if comm.rank == 0:
                comm.barrier()
                for _ in range(10):
                    comm.recv(source=ANY_SOURCE, tag=5)
                return True
            if comm.rank == 1:
                for k in range(10):
                    comm.send(k, dest=0, tag=5)
            else:
                for k in range(n_unrelated):
                    comm.send(k, dest=0, tag=1000 + (k % 16))
            comm.barrier()
            return True

        eng.run(main)
        examined = _mailbox_examined(eng)
        # 10 matches x (<= #live buckets, bounded by 2 senders x 17
        # tags) plus barrier bookkeeping -- far below one per message.
        assert examined < n_unrelated / 2, examined


class TestTimeoutAccounting:
    def test_frequent_notifications_do_not_burn_timeout(self):
        """Wakeups no longer charge a fixed slice each: a waiter that
        is notified constantly survives until its real deadline."""
        import threading
        import time as _time

        eng = Engine(2, timeout=2.0)

        def main(comm):
            if comm.rank == 0:
                t0 = _time.monotonic()  # noqa: ANL001 - measures the real watchdog
                # Rank 1 sends 50 non-matching messages over ~0.5s of
                # real time; each wakes nothing (targeted wakeups), and
                # the final matching message must arrive well within
                # the 2s budget -- under slice accounting 50 wakeups
                # would already have consumed 2.5s of budget.
                payload, _ = comm.recv(source=1, tag=9)
                assert payload == "done"
                assert _time.monotonic() - t0 < 2.0  # noqa: ANL001
                for _ in range(50):
                    comm.recv(source=1, tag=0)
                return True
            for _ in range(50):
                comm.send("noise", dest=0, tag=0)
                _time.sleep(0.01)  # noqa: ANL001 - real stall exercises the watchdog
            comm.send("done", dest=0, tag=9)
            return True

        res = eng.run(main)
        assert all(res.returns)

    def test_deadlock_still_detected(self):
        from repro.simmpi import DeadlockError

        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # never sent

        with pytest.raises(DeadlockError):
            run_world(2, main, timeout=0.4)
