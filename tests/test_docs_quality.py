"""Documentation quality gate: every public item carries a docstring.

"Doc comments on every public item" is a deliverable; this test keeps it
true as the code evolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.faults",
    "repro.simmpi",
    "repro.h5",
    "repro.pfs",
    "repro.diy",
    "repro.lowfive",
    "repro.baselines",
    "repro.workflow",
    "repro.cosmo",
    "repro.synth",
    "repro.perfmodel",
    "repro.bench",
    "repro.tools",
    "repro.stream",
]


def iter_modules():
    seen = set()
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__,
                                         prefix=pkg_name + "."):
            if info.name not in seen:
                seen.add(info.name)
                yield importlib.import_module(info.name)


def public_members(mod):
    for name, obj in vars(mod).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != mod.__name__:
            continue  # re-exports documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_docstring():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_docstring():
    missing = []
    for mod in iter_modules():
        for name, obj in public_members(mod):
            if not inspect.getdoc(obj):
                missing.append(f"{mod.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    missing = []
    for mod in iter_modules():
        for cname, cls in public_members(mod):
            if not inspect.isclass(cls):
                continue
            for mname, meth in vars(cls).items():
                if mname.startswith("_"):
                    continue
                if not (inspect.isfunction(meth)
                        or isinstance(meth, (property, staticmethod,
                                             classmethod))):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                target = getattr(target, "__func__", target)
                if not inspect.getdoc(target):
                    missing.append(f"{mod.__name__}.{cname}.{mname}")
    assert not missing, f"undocumented public methods: {missing}"
