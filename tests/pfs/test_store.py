"""PFS byte-store tests."""

import threading

import pytest

from repro.pfs import PFSStore


def test_create_write_read():
    s = PFSStore()
    h = s.create("f")
    h.pwrite(0, b"hello")
    assert h.pread(0, 5) == b"hello"
    assert h.size == 5


def test_pwrite_grows_and_zero_fills():
    s = PFSStore()
    h = s.create("f")
    h.pwrite(4, b"xy")
    assert h.size == 6
    assert h.pread(0, 6) == b"\0\0\0\0xy"


def test_pwrite_overwrite_middle():
    s = PFSStore()
    h = s.create("f")
    h.pwrite(0, b"abcdef")
    h.pwrite(2, b"XY")
    assert h.pread(0, 6) == b"abXYef"


def test_short_read_past_eof():
    s = PFSStore()
    h = s.create("f")
    h.pwrite(0, b"abc")
    assert h.pread(1, 100) == b"bc"
    assert h.pread(10, 5) == b""


def test_namespace_ops():
    s = PFSStore()
    assert not s.exists("f")
    s.create("f")
    assert s.exists("f")
    assert s.listdir() == ["f"]
    assert s.size("f") == 0
    s.unlink("f")
    assert not s.exists("f")
    with pytest.raises(FileNotFoundError):
        s.unlink("f")
    with pytest.raises(FileNotFoundError):
        s.open("f")
    with pytest.raises(FileNotFoundError):
        s.size("f")


def test_create_truncates_or_rejects():
    s = PFSStore()
    s.create("f").pwrite(0, b"data")
    assert s.size("f") == 4
    s.create("f")  # truncate
    assert s.size("f") == 0
    with pytest.raises(FileExistsError):
        s.create("f", truncate=False)


def test_stats_counters():
    s = PFSStore()
    h = s.create("f")
    h.pwrite(0, b"abcd")
    h.pread(0, 2)
    assert s.bytes_written == 4
    assert s.bytes_read == 2
    assert s.n_creates == 1


def test_concurrent_disjoint_writes():
    s = PFSStore()
    h = s.create("f")
    n, span = 8, 1000

    def writer(i):
        h.pwrite(i * span, bytes([i]) * span)

    threads = [threading.Thread(target=writer, args=(i,))  # noqa: ANL003
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    data = h.pread(0, n * span)
    for i in range(n):
        assert data[i * span:(i + 1) * span] == bytes([i]) * span
