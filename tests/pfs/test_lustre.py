"""Lustre cost-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.pfs import LustreModel


def test_open_time_grows_with_procs():
    m = LustreModel()
    assert m.open_time(4) < m.open_time(64) < m.open_time(1024)


def test_close_cheaper_than_open():
    m = LustreModel()
    for p in (4, 64, 1024):
        assert m.close_time(p) < m.open_time(p)


def test_aggregate_bandwidth_capped_by_stripes():
    m = LustreModel(ost_bandwidth=1e9, stripe_count=4, lock_factor=0.0)
    assert m.aggregate_bandwidth(1) == pytest.approx(4e9)
    assert m.aggregate_bandwidth(1000) == pytest.approx(4e9)


def test_lock_contention_degrades_bandwidth():
    m = LustreModel()
    assert m.aggregate_bandwidth(1024) < m.aggregate_bandwidth(8)


def test_write_dominates_read():
    m = LustreModel()
    nbytes, p = 10**9, 256
    assert m.write_time(nbytes, p) > m.read_time(nbytes, p)


def test_independent_penalty():
    m = LustreModel()
    assert m.write_time(10**8, 16, collective=False) > \
        m.write_time(10**8 * 16, 16, collective=True) / 16 * 2


def test_metadata_op_scaling():
    m = LustreModel()
    assert m.metadata_op_time(10) == pytest.approx(10 * m.md_small_op)


def test_file_io_orders_slower_than_network():
    """The premise of paper Fig. 5: file mode is 2+ orders of magnitude
    slower than in situ messaging for the same bytes."""
    from repro.simmpi import NetworkModel

    lustre = LustreModel()
    net = NetworkModel()
    nbytes = 2 * 10**7 * 64  # 64 producers at ~19 MiB each
    t_file = (lustre.open_time(64) + lustre.write_time(nbytes, 64)
              + lustre.close_time(64) + lustre.open_time(64)
              + lustre.read_time(nbytes, 64) + lustre.close_time(64))
    t_net = net.transfer_time(nbytes // 64, 64)
    assert t_file > 100 * t_net


@given(st.integers(min_value=1, max_value=10**10),
       st.integers(min_value=1, max_value=1 << 16))
def test_prop_times_positive_and_monotone(nbytes, p):
    m = LustreModel()
    assert m.write_time(nbytes, p) > 0
    assert m.read_time(nbytes, p) > 0
    assert m.write_time(nbytes + 10**6, p) >= m.write_time(nbytes, p)
