"""Two-phase collective I/O model tests."""

import pytest
from hypothesis import example, given, strategies as st

from repro.pfs import LustreModel
from repro.pfs.mpiio import TwoPhaseModel
from repro.simmpi import NetworkModel


@pytest.fixture
def model():
    return TwoPhaseModel(NetworkModel(), LustreModel())


class TestPhases:
    def test_aggregator_count_capped_by_stripes(self, model):
        assert model.naggregators(2) == 2
        assert model.naggregators(1024) == model.lustre.stripe_count

    def test_shuffle_faster_than_write_for_big_data(self, model):
        # Interconnect bandwidth >> OST bandwidth.
        nbytes = 10**9
        assert model.shuffle_time(nbytes, 64) < model.write_time(nbytes, 64)

    def test_total_bounded_by_phase_sum(self, model):
        nbytes, p = 10**9, 256
        total = model.collective_write_time(nbytes, p)
        assert total <= model.shuffle_time(nbytes, p) + \
            model.write_time(nbytes, p) + 1e-9
        assert total >= max(model.shuffle_time(nbytes, p),
                            model.write_time(nbytes, p)) - 1e-9

    def test_pipelining_hides_fast_phase(self, model):
        """With many rounds, total ~ slow phase, not the sum."""
        nbytes = 100 * model.cb_buffer * model.lustre.stripe_count
        total = model.collective_write_time(nbytes, 512)
        slow = max(model.shuffle_time(nbytes, 512),
                   model.write_time(nbytes, 512))
        assert total < 1.1 * slow


class TestCollectiveVsIndependent:
    def test_collective_wins_at_scale(self, model):
        nbytes = 10**10
        assert model.collective_write_time(nbytes, 1024) < \
            model.independent_write_time(nbytes, 1024)

    def test_breakeven_exists(self, model):
        p = model.breakeven_procs(10**9)
        assert 1 <= p <= 1 << 15
        # Beyond breakeven the gap widens.
        assert model.collective_write_time(10**9, 4 * p) < \
            model.independent_write_time(10**9, 4 * p)


@given(st.integers(1, 10**10), st.integers(1, 1 << 14))
# Crossed a cb_buffer round boundary: the old amortized-total formula
# shrank fast/nrounds faster than the stream terms grew.
@example(nbytes=129_738_582, p=16064)
def test_prop_times_positive_monotone_in_bytes(nbytes, p):
    m = TwoPhaseModel(NetworkModel(), LustreModel())
    t1 = m.collective_write_time(nbytes, p)
    t2 = m.collective_write_time(nbytes + 10**7, p)
    assert 0 < t1 <= t2
