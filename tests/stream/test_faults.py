"""Streaming under faults: lagging consumers, crashes, depth bound.

The satellite scenarios: a consumer made deterministically slow by a
:class:`~repro.faults.ComputeSlowRule` drives the producer into
backpressure and still drains the whole stream; a consumer crash
mid-stream recovers through :class:`~repro.workflow.RestartPolicy`
with the rerun joining late and catching up from the newest retained
epoch; and a hypothesis property pinning the core queue invariant --
the live-epoch depth never exceeds ``max_lag``, whatever the relative
producer/consumer rates.
"""

import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.h5 as h5
from repro.faults import ComputeSlowRule, CrashRule, FaultPlan
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL, StreamConfig
from repro.pfs import PFSStore
from repro.workflow import RestartPolicy, Workflow

SHAPE = (10, 6)


@pytest.fixture(autouse=True)
def aggressive_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


def build_stream_wf(nsteps, *, max_lag=2, catch_up=False,
                    consumer_compute=0.0, consumer_delay=0.0):
    """1 producer rank -> 1 consumer rank (world ranks 0 and 1)."""
    def make_vol(ctx):
        return ctx.singleton("vol", lambda: DistMetadataVOL(
            comm=ctx.comm, under=NativeVOL(PFSStore())))

    def producer(ctx):
        vol = make_vol(ctx)
        with ctx.stream_producer("consumer", "sim", vol,
                                 StreamConfig(max_lag=max_lag)) as prod:
            for step in range(nsteps):
                with prod.epoch() as f:
                    d = f.create_dataset("grid", shape=SHAPE,
                                         dtype=h5.UINT64)
                    d.write(np.full(SHAPE, step, dtype=np.uint64)
                            .ravel())
        return True

    def consumer(ctx):
        vol = make_vol(ctx)
        if consumer_delay:
            ctx.comm.compute(consumer_delay)
        cfg = StreamConfig(max_lag=max_lag, catch_up=catch_up)
        seen = []
        with ctx.stream_consumer("producer", "sim", vol, cfg) as cons:
            for ep in cons.epochs():
                with ep:
                    vals = np.asarray(ep.file["grid"][...])
                    seen.append((ep.id, int(vals.flat[0]) == ep.id))
                if consumer_compute:
                    ctx.comm.compute(consumer_compute)
        return seen

    wf = Workflow()
    wf.add_task("producer", 1, producer)
    wf.add_task("consumer", 1, consumer)
    wf.add_link("producer", "consumer")
    return wf


class TestLaggingConsumer:
    def test_slow_rule_triggers_backpressure_then_drains(self):
        # The consumer is only slow through the fault plan: same user
        # code, 6x the virtual cost per epoch of processing.
        wf = build_stream_wf(8, max_lag=2, consumer_compute=0.02)
        plan = FaultPlan(3, slowdowns=(ComputeSlowRule(1, 6.0),))
        res = wf.run(timeout=120.0, faults=plan)
        seen = res.returns["consumer"][0]
        assert seen == [(e, True) for e in range(8)]  # fully drained
        rep = res.causal_report()
        assert rep.wait_by_category().get("backpressure", 0.0) > 0.0
        bp = [w for w in rep.waits if w.category == "backpressure"]
        assert {w.rank for w in bp} == {0}
        assert {w.cause_rank for w in bp} == {1}
        assert res.obs.stream.max_depth("sim") <= 2

    def test_slowdown_scales_virtual_cost(self):
        wf_fast = build_stream_wf(4, consumer_compute=0.05)
        t_fast = wf_fast.run(timeout=120.0).vtime
        wf_slow = build_stream_wf(4, consumer_compute=0.05)
        plan = FaultPlan(3, slowdowns=(ComputeSlowRule(1, 5.0),))
        t_slow = wf_slow.run(timeout=120.0, faults=plan).vtime
        assert t_slow > t_fast


class TestCrashRecovery:
    def test_consumer_crash_restarts_and_catches_up(self):
        # The consumer joins late (0.3s of startup work) and crashes
        # once mid-stream; the whole-workflow retry carries the same
        # plan (times=1 -> the crash is spent) and the rerun, with
        # catch_up, subscribes from the newest retained epoch instead
        # of replaying the stream from 0.
        wf = build_stream_wf(6, max_lag=2, catch_up=True,
                             consumer_delay=0.3, consumer_compute=0.02)
        plan = FaultPlan(5, crashes=(CrashRule(rank=1, at_vtime=0.35,
                                               times=1),))
        res = wf.run(timeout=120.0, faults=plan,
                     restart=RestartPolicy(max_retries=1))
        assert res.attempts == 2
        seen = res.returns["consumer"][0]
        assert all(ok for _, ok in seen)
        assert [e for e, _ in seen] == sorted(e for e, _ in seen)
        assert seen[-1][0] == 5  # reached end of stream
        # The successful attempt's first acquisition is a catch-up:
        # the late joiner starts past epoch 0.
        acquires = res.obs.stream.events("sim", "acquire")
        assert min(ev.epoch for ev in acquires) > 0
        assert res.obs.stream.open_acquisitions() == []

    def test_crash_without_restart_policy_propagates(self):
        from repro.simmpi import RankFailure

        wf = build_stream_wf(6, consumer_delay=0.3,
                             consumer_compute=0.02)
        plan = FaultPlan(5, crashes=(CrashRule(rank=1, at_vtime=0.35,
                                               times=1),))
        with pytest.raises(RankFailure):
            wf.run(timeout=120.0, faults=plan)


class TestDepthInvariant:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nsteps=st.integers(1, 5), max_lag=st.integers(1, 3),
           slow=st.sampled_from([1.0, 3.0, 8.0]))
    def test_queue_depth_never_exceeds_max_lag(self, nsteps, max_lag,
                                               slow):
        wf = build_stream_wf(nsteps, max_lag=max_lag,
                             consumer_compute=0.01)
        plan = FaultPlan(11, slowdowns=(ComputeSlowRule(1, slow),))
        res = wf.run(timeout=120.0, faults=plan)
        seen = res.returns["consumer"][0]
        assert [e for e, _ in seen] == list(range(nsteps))
        assert res.obs.stream.max_depth("sim") <= max_lag
