"""Streaming pipeline tests: epoch lifecycle, backpressure, reduction.

Every test runs a producer task publishing a series of epochs through
the VOL while a consumer task subscribes -- the ``repro.stream``
tentpole. Values are position+epoch encoded so cross-epoch mixups are
caught, and the stream ledger is asserted against the lifecycle the
run should have produced.
"""

import sys

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL, StreamConfig
from repro.lowfive.config import CostConfig
from repro.lowfive.reduce import reduction_stride
from repro.pfs import PFSStore
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow

SHAPE = (12, 8)


@pytest.fixture(autouse=True)
def aggressive_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


def epoch_grid(sel, epoch):
    """Position-encoded values, shifted per epoch."""
    return grid_values(sel, SHAPE) + np.uint64(1000 * epoch)


def run_stream(nprod, ncons, nsteps, *, max_lag=2, level=0,
               consumer_compute=0.0, producer_compute=0.0,
               catch_up=False, faults=None, timeout=120.0):
    """1 producer task -> 1 consumer task streaming ``nsteps`` epochs.

    The consumer validates each epoch it reads and returns
    ``[(epoch, ok), ...]``; the producer returns True.
    """
    costs = CostConfig(reduction_level=level)

    def make_vol(ctx):
        return ctx.singleton("vol", lambda: DistMetadataVOL(
            comm=ctx.comm, under=NativeVOL(PFSStore()), costs=costs))

    def producer(ctx):
        vol = make_vol(ctx)
        with ctx.stream_producer("consumer", "sim", vol,
                                 StreamConfig(max_lag=max_lag)) as prod:
            for step in range(nsteps):
                if producer_compute:
                    ctx.comm.compute(producer_compute)
                with prod.epoch() as f:
                    d = f.create_dataset("grid", shape=SHAPE,
                                         dtype=h5.UINT64)
                    sel = producer_grid_selection(SHAPE, ctx.rank,
                                                  ctx.size)
                    d.write(epoch_grid(sel, step), file_select=sel)
        return True

    def consumer(ctx):
        vol = make_vol(ctx)
        cfg = StreamConfig(max_lag=max_lag, catch_up=catch_up)
        seen = []
        with ctx.stream_consumer("producer", "sim", vol, cfg) as cons:
            for ep in cons.epochs():
                with ep:
                    sel = consumer_grid_selection(SHAPE, ctx.rank,
                                                  ctx.size)
                    vals = ep.file["grid"].read(sel, reshape=False)
                    ok = np.array_equal(vals, epoch_grid(sel, ep.id))
                    seen.append((ep.id, ok))
                if consumer_compute:
                    ctx.comm.compute(consumer_compute)
        return seen

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf.run(timeout=timeout, faults=faults)


class TestPipeline:
    def test_1_to_1_all_epochs_in_order(self):
        res = run_stream(1, 1, 5)
        for seen in res.returns["consumer"]:
            assert seen == [(e, True) for e in range(5)]

    def test_n_to_m_redistribution_per_epoch(self):
        # Mismatched decompositions, re-resolved for every epoch.
        res = run_stream(3, 2, 4)
        for seen in res.returns["consumer"]:
            assert seen == [(e, True) for e in range(4)]

    def test_zero_epoch_stream_terminates(self):
        res = run_stream(2, 2, 0)
        for seen in res.returns["consumer"]:
            assert seen == []

    def test_single_epoch(self):
        res = run_stream(2, 1, 1, max_lag=1)
        assert res.returns["consumer"][0] == [(0, True)]

    def test_epochs_are_retired_once_released(self):
        res = run_stream(1, 1, 6, max_lag=2)
        ledger = res.obs.stream
        drops = ledger.events("sim", "drop")
        # Every epoch is eventually dropped by the producer rank.
        assert sorted(e.epoch for e in drops) == list(range(6))
        assert ledger.open_acquisitions() == []

    def test_ledger_lifecycle_per_epoch(self):
        res = run_stream(1, 1, 3)
        ledger = res.obs.stream
        for e in range(3):
            kinds = [ev.kind for ev in ledger.events("sim")
                     if ev.epoch == e]
            assert "publish" in kinds
            assert "acquire" in kinds
            assert "release" in kinds
            assert "drop" in kinds


class TestBackpressure:
    def test_queue_depth_is_bounded_by_max_lag(self):
        # Consumer 2x+ slower than the producer.
        res = run_stream(1, 1, 8, max_lag=2, producer_compute=0.01,
                         consumer_compute=0.08)
        assert res.obs.stream.max_depth("sim") <= 2

    def test_backpressure_wait_attributed_to_lagging_consumer(self):
        res = run_stream(1, 1, 8, max_lag=2, producer_compute=0.01,
                         consumer_compute=0.08)
        rep = res.causal_report()
        by_cat = rep.wait_by_category()
        assert by_cat.get("backpressure", 0.0) > 0.0
        bp = [w for w in rep.waits if w.category == "backpressure"]
        # The producer (world rank 0) waits; the lagging consumer
        # (world rank 1) is the cause.
        assert {w.rank for w in bp} == {0}
        assert {w.cause_rank for w in bp} == {1}

    def test_window_wider_than_stream_never_gates(self):
        # A live window bigger than the whole stream can never fill,
        # so the producer never blocks: zero backpressure seconds
        # (end-of-stream drain waits must not be misclassified).
        res = run_stream(1, 1, 5, max_lag=6, producer_compute=0.05)
        rep = res.causal_report()
        assert rep.wait_by_category().get("backpressure", 0.0) == 0.0

    def test_max_lag_1_lockstep(self):
        res = run_stream(1, 1, 5, max_lag=1, consumer_compute=0.02)
        assert res.obs.stream.max_depth("sim") <= 1
        for seen in res.returns["consumer"]:
            assert [e for e, _ in seen] == list(range(5))


class TestCatchUp:
    def test_slow_joiner_skips_to_newest(self):
        # A consumer far slower than the producer, allowed to skip:
        # it consumes fewer epochs than published but always the
        # newest available, and every epoch still gets released
        # (cumulative high-water marks cover the skipped ones).
        res = run_stream(1, 1, 8, max_lag=4, producer_compute=0.001,
                         consumer_compute=0.2, catch_up=True)
        seen = res.returns["consumer"][0]
        ids = [e for e, ok in seen]
        assert all(ok for _, ok in seen)
        assert ids == sorted(ids)
        assert ids[-1] == 7  # reached the end of the stream
        assert len(ids) < 8  # actually skipped some epochs
        assert res.obs.stream.open_acquisitions() == []

    def test_catch_up_releases_cover_skipped_epochs(self):
        res = run_stream(1, 1, 8, max_lag=4, producer_compute=0.001,
                         consumer_compute=0.2, catch_up=True)
        drops = res.obs.stream.events("sim", "drop")
        assert sorted(e.epoch for e in drops) == list(range(8))


class TestReduction:
    def test_level_0_is_bit_identical_full_fidelity(self):
        res = run_stream(2, 2, 3, level=0)
        for seen in res.returns["consumer"]:
            assert all(ok for _, ok in seen)

    def test_bytes_on_wire_decrease_monotonically(self):
        sizes = []
        for level in (0, 1, 2):
            res = run_stream(1, 1, 3, level=level)
            sizes.append(res.bytes_sent)
        assert sizes[0] > sizes[1] > sizes[2]

    def test_subsampled_values_are_exact_at_kept_points(self):
        # At level 1 the server decimates each served piece by the
        # configured stride; the points that do arrive carry exact
        # values at their true positions.
        costs = CostConfig(reduction_level=1)
        stride = reduction_stride(costs)
        assert stride == 2

        def make_vol(ctx):
            return ctx.singleton("vol", lambda: DistMetadataVOL(
                comm=ctx.comm, under=NativeVOL(PFSStore()), costs=costs))

        def producer(ctx):
            vol = make_vol(ctx)
            with ctx.stream_producer("consumer", "sim", vol) as prod:
                with prod.epoch() as f:
                    d = f.create_dataset("grid", shape=SHAPE,
                                         dtype=h5.UINT64)
                    sel = producer_grid_selection(SHAPE, 0, 1)
                    d.write(grid_values(sel, SHAPE), file_select=sel)
            return True

        def consumer(ctx):
            vol = make_vol(ctx)
            with ctx.stream_consumer("producer", "sim", vol) as cons:
                with cons.next_epoch() as ep:
                    vals = np.asarray(ep.file["grid"][...])
            return vals

        wf = Workflow()
        wf.add_task("producer", 1, producer)
        wf.add_task("consumer", 1, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run(timeout=60.0)
        got = res.returns["consumer"][0]
        full = grid_values(
            producer_grid_selection(SHAPE, 0, 1), SHAPE
        ).reshape(SHAPE)
        # Kept points (the producer's single piece decimated by the
        # stride in every dimension) are exact ...
        assert np.array_equal(got[::stride, ::stride],
                              full[::stride, ::stride])
        # ... and the decimated points were not transported (fill 0;
        # position-encoding makes 0 impossible except at the origin).
        assert not np.array_equal(got, full)
        assert np.count_nonzero(got) <= (full.size + 3) // 4 + 1


def _run_retain(release_after_loop: bool):
    """1->1 stream of 3 epochs; the consumer retains the last one.

    With ``release_after_loop`` it reads the retained epoch once the
    stream has ended and releases it properly; otherwise it exits
    without releasing -- the epoch-leak scenario.
    """
    def make_vol(ctx):
        return ctx.singleton("vol", lambda: DistMetadataVOL(
            comm=ctx.comm, under=NativeVOL(PFSStore())))

    def producer(ctx):
        vol = make_vol(ctx)
        with ctx.stream_producer("consumer", "sim", vol) as prod:
            for step in range(3):
                with prod.epoch() as f:
                    d = f.create_dataset("grid", shape=SHAPE,
                                         dtype=h5.UINT64)
                    sel = producer_grid_selection(SHAPE, 0, 1)
                    d.write(epoch_grid(sel, step), file_select=sel)
        return True

    def consumer(ctx):
        vol = make_vol(ctx)
        held = None
        with ctx.stream_consumer("producer", "sim", vol) as cons:
            for ep in cons.epochs():
                with ep:
                    if ep.id == 2:
                        ep.retain()
                        held = ep
            late = None
            if release_after_loop:
                # The stream has ended (EOS seen) but the retained
                # epoch is still live on the producer: reads still
                # work, then the explicit release retires it.
                sel = consumer_grid_selection(SHAPE, 0, 1)
                late = np.asarray(held.file["grid"].read(
                    sel, reshape=False))
                ok = np.array_equal(late, epoch_grid(sel, 2))
                held.release()
                return ok
        return held is not None

    wf = Workflow()
    wf.add_task("producer", 1, producer)
    wf.add_task("consumer", 1, consumer)
    wf.add_link("producer", "consumer")
    return wf.run(timeout=60.0)


class TestRetain:
    def test_retained_last_epoch_readable_after_eos_then_released(self):
        res = _run_retain(release_after_loop=True)
        assert res.returns["consumer"] == [True]
        assert res.obs.stream.open_acquisitions() == []
        drops = res.obs.stream.events("sim", "drop")
        assert sorted(e.epoch for e in drops) == [0, 1, 2]

    def test_unreleased_retained_epoch_is_an_open_acquisition(self):
        res = _run_retain(release_after_loop=False)
        assert res.returns["consumer"] == [True]
        # World rank 1 (the consumer) still holds epoch 2.
        assert res.obs.stream.open_acquisitions() == [("sim", 2, 1)]
