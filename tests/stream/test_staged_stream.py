"""Epoch retention through the staged (in-transit) transport.

Streaming epochs can also flow through staging ranks: the producer
stages each epoch file and moves on; consumers read from the stagers
and release epochs with cumulative ``__release__`` high-water marks.
These tests pin the staging-side retention policy -- released epochs
are dropped from the stagers (bounded live window), unreleased ones
are retained for the lifetime of the staging task.
"""

import sys

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive.rpc import RPCClient
from repro.lowfive.vol_staged import StagedMetadataVOL, staging_main
from repro.pfs import PFSStore
from repro.stream import epoch_fname, stream_pattern
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
)
from repro.workflow import Workflow

SHAPE = (12, 8)


@pytest.fixture(autouse=True)
def aggressive_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


def epoch_grid(sel, epoch):
    return grid_values(sel, SHAPE) + np.uint64(1000 * epoch)


def build_staged_stream(nprod, ncons, nstage, nsteps, *,
                        release_upto=None):
    """Producer stages ``nsteps`` epoch files; consumers release them.

    ``release_upto`` caps the cumulative high-water mark the consumers
    send (None releases everything). Returns the workflow result; the
    staging task returns its retained-file dict.
    """
    pattern = stream_pattern("sim")

    def make_vol(ctx, role):
        def factory():
            vol = StagedMetadataVOL(comm=ctx.comm,
                                    under=NativeVOL(PFSStore()))
            vol.set_memory(pattern)
            if role == "producer":
                vol.stage_on_close(pattern, ctx.intercomm("staging"))
            else:
                vol.set_staged_consumer(pattern,
                                        ctx.intercomm("staging"))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer")
        for e in range(nsteps):
            f = h5.File(epoch_fname("sim", e), "w", comm=ctx.comm,
                        vol=vol)
            d = f.create_dataset("grid", shape=SHAPE, dtype=h5.UINT64)
            sel = producer_grid_selection(SHAPE, ctx.rank, ctx.size)
            d.write(epoch_grid(sel, e), file_select=sel)
            f.close()  # staged: returns without serving
        StagedMetadataVOL.finalize_staging(ctx.intercomm("staging"))
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer")
        inter = ctx.intercomm("staging")
        world = ctx.comm.world_rank(ctx.rank)
        oks = []
        for e in range(nsteps):
            f = h5.File(epoch_fname("sim", e), "r", comm=ctx.comm,
                        vol=vol)
            sel = consumer_grid_selection(SHAPE, ctx.rank, ctx.size)
            vals = np.asarray(f["grid"].read(sel, reshape=False))
            oks.append(np.array_equal(vals, epoch_grid(sel, e)))
            f.close()
            if release_upto is None or e <= release_upto:
                RPCClient(inter).notify_all("__release__", "sim", e,
                                            world)
        StagedMetadataVOL.finalize_staging(inter)
        return all(oks)

    def staging(ctx):
        return staging_main(
            [ctx.intercomm("producer"), ctx.intercomm("consumer")]
        )

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_task("staging", nstage, staging)
    wf.add_link("producer", "staging")
    wf.add_link("consumer", "staging")
    return wf.run(timeout=120.0)


class TestStagedRetention:
    def test_released_epochs_dropped_from_stagers(self):
        res = build_staged_stream(1, 1, 1, 4)
        assert all(res.returns["consumer"])
        # Every epoch released -> none retained by the staging rank.
        for held in res.returns["staging"]:
            assert not any(f.startswith("sim@") for f in held)
        drops = res.obs.stream.events("sim", "drop")
        assert sorted(ev.epoch for ev in drops) == list(range(4))

    def test_unreleased_tail_is_retained(self):
        res = build_staged_stream(1, 1, 1, 4, release_upto=2)
        assert all(res.returns["consumer"])
        held = res.returns["staging"][0]
        assert epoch_fname("sim", 3) in held
        assert not any(epoch_fname("sim", e) in held for e in range(3))
        drops = res.obs.stream.events("sim", "drop")
        assert sorted(ev.epoch for ev in drops) == [0, 1, 2]

    def test_n_to_m_quorum_release(self):
        # A drop needs the release quorum: every consumer rank, across
        # both stagers, must pass the high-water mark.
        res = build_staged_stream(2, 2, 2, 3)
        assert all(res.returns["consumer"])
        for held in res.returns["staging"]:
            assert not any(f.startswith("sim@") for f in held)
        drops = res.obs.stream.events("sim", "drop")
        # Each staging rank drops its copy of every epoch.
        assert sorted(ev.epoch for ev in drops) == sorted(
            list(range(3)) * 2)
