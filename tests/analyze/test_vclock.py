"""Vector-clock construction: ordering axioms and trace replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analyze import (
    TraceInconsistency,
    build_happens_before,
    concurrent,
    happens_before,
)
from repro.analyze.vclock import leq
from repro.simmpi import ANY_SOURCE, run_world


def pingpong(comm):
    if comm.rank == 0:
        comm.send("ping", dest=1, tag=1)
        return comm.recv(source=1, tag=2)[0]
    got = comm.recv(source=0, tag=1)[0]
    comm.send("pong", dest=0, tag=2)
    return got


def fan_in(comm):
    if comm.rank == 0:
        return [comm.recv(source=ANY_SOURCE, tag=0)[0]
                for _ in range(comm.size - 1)]
    comm.compute(comm.rank * 1e-3)
    comm.send(comm.rank, dest=0, tag=0)
    return None


class TestAxioms:
    """The derived relation is a strict partial order."""

    def _vcs(self):
        res = run_world(2, pingpong, timeout=30.0)
        hb = build_happens_before(res.obs)
        return list(hb.send_vc.values()) + list(hb.recv_vc.values())

    def test_irreflexive_and_antisymmetric(self):
        vcs = self._vcs()
        for a in vcs:
            assert not happens_before(a, a)
        for a in vcs:
            for b in vcs:
                assert not (happens_before(a, b) and happens_before(b, a))

    def test_exactly_one_of_hb_or_concurrent(self):
        vcs = self._vcs()
        for a in vcs:
            for b in vcs:
                if a == b:
                    continue
                n = sum([happens_before(a, b), happens_before(b, a),
                         concurrent(a, b)])
                assert n == 1, (a, b)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                              st.integers(0, 5)), min_size=3, max_size=3))
    def test_transitivity_on_random_clocks(self, vcs):
        a, b, c = vcs
        if happens_before(a, b) and happens_before(b, c):
            assert happens_before(a, c)
        if leq(a, b) and leq(b, c):
            assert leq(a, c)


class TestReplay:
    def test_pingpong_is_fully_ordered(self):
        res = run_world(2, pingpong, timeout=30.0)
        hb = build_happens_before(res.obs)
        # one message each way; the first send precedes the reply send
        assert len(hb.send_vc) == 2
        first, second = sorted(hb.send_vc)
        assert happens_before(hb.send_vc[first], hb.send_vc[second])

    def test_fan_in_sends_are_concurrent(self):
        res = run_world(4, fan_in, timeout=30.0)
        hb = build_happens_before(res.obs)
        vcs = list(hb.send_vc.values())
        assert len(vcs) == 3
        for i, a in enumerate(vcs):
            for b in vcs[i + 1:]:
                assert concurrent(a, b)

    def test_hb_is_consistent_with_virtual_time(self):
        """a HB b implies t(a) <= t(b): causality never runs backwards
        against the virtual clock."""
        res = run_world(4, fan_in, timeout=30.0)
        causal = res.obs.causal
        hb = build_happens_before(res.obs)
        t_post = {p.msg_id: p.t_post for p in causal.posts()}
        for a, ta in t_post.items():
            for b, tb in t_post.items():
                if happens_before(hb.send_vc[a], hb.send_vc[b]):
                    assert ta <= tb + 1e-12

    def test_collective_orders_across_ranks(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("pre", dest=1, tag=1)
            comm.barrier()
            if comm.rank == 1:
                comm.send("post", dest=0, tag=2)
                return None
            return comm.recv(source=1, tag=2)[0]

        res = run_world(2, main, timeout=30.0)
        hb = build_happens_before(res.obs)
        pre, post = sorted(hb.send_vc)
        # the pre-barrier send happens-before the post-barrier send,
        # even though different ranks posted them
        assert happens_before(hb.send_vc[pre], hb.send_vc[post])

    def test_inconsistent_trace_raises(self):
        """A cyclically-forged trace (each rank receives the other's
        message before sending its own) admits no replay."""
        from tests.analyze.tracestub import StubObs, edge, post

        obs = StubObs(
            posts=[post(msg_id=1, src=0, dst=1, t_post=2.0),
                   post(msg_id=2, src=1, dst=0, t_post=2.0)],
            edges=[edge(msg_id=2, src=1, dst=0, t_recv=1.0),
                   edge(msg_id=1, src=0, dst=1, t_recv=1.0)],
        )
        with pytest.raises(TraceInconsistency):
            build_happens_before(obs)
