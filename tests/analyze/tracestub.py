"""A hand-built causal trace for analyzer unit tests.

The dynamic analyzers consume only the recorder's *read* API
(``posts()``, ``edges()``, ``collectives()``, ``matches()``,
``consumed_ids()``), so fixtures can assemble the real record
dataclasses directly and skip running a simulation -- mismatched
collectives and forged inconsistent traces are states a healthy run
cannot even produce.
"""

from repro.obs.causal import (
    CollectiveRecord,
    FlowEdge,
    MatchRecord,
    PendingSend,
)


def post(msg_id, src, dst, t_post, tag=0, comm_id=1, nbytes=8,
         t_arrival=None):
    return PendingSend(msg_id=msg_id, src=src, dst=dst, tag=tag,
                       comm_id=comm_id, nbytes=nbytes, t_post=t_post,
                       t_arrival=t_post if t_arrival is None
                       else t_arrival)


def edge(msg_id, src, dst, t_recv, tag=0, comm_id=1, nbytes=8,
         t_post=0.0, t_arrival=None):
    arr = t_recv if t_arrival is None else t_arrival
    return FlowEdge(msg_id=msg_id, src=src, dst=dst, tag=tag,
                    comm_id=comm_id, nbytes=nbytes, t_post=t_post,
                    t_arrival=arr, t_recv_start=arr, t_recv=t_recv)


def match(dst, msg_id, t_match, candidates, source=-1, tag=0, comm_id=1):
    return MatchRecord(dst=dst, comm_id=comm_id, source=source, tag=tag,
                       msg_id=msg_id, t_match=t_match,
                       candidates=tuple(candidates))


def coll(coll_id, enter_clocks, t_end, kind="barrier", comm_id=1,
         kinds=None):
    return CollectiveRecord(
        coll_id=coll_id, kind=kind, comm_id=comm_id, nbytes=0,
        enter_clocks=dict(enter_clocks),
        t_ready=max(enter_clocks.values()), t_end=t_end,
        straggler=max(enter_clocks, key=enter_clocks.__getitem__),
        kinds={} if kinds is None else dict(kinds),
    )


class StubCausal:
    def __init__(self, posts=(), edges=(), collectives=(), matches=(),
                 consumed=()):
        self._posts = list(posts)
        self._edges = list(edges)
        self._colls = list(collectives)
        self._matches = list(matches)
        self._consumed = set(consumed)

    def posts(self):
        return list(self._posts)

    def edges(self):
        return list(self._edges)

    def collectives(self):
        return list(self._colls)

    def matches(self):
        return list(self._matches)

    def consumed_ids(self):
        return set(self._consumed)


class StubObs:
    """Duck-typed ``Observability`` carrying only the causal trace."""

    def __init__(self, posts=(), edges=(), collectives=(), matches=(),
                 consumed=()):
        self.causal = StubCausal(posts, edges, collectives, matches,
                                 consumed)
