"""Collective-mismatch and message-leak checkers."""

from repro.analyze import analyze_obs, check_collectives, check_leaks
from repro.simmpi import run_world
from tests.analyze.tracestub import StubObs, coll, post


class TestCollectives:
    def test_matching_kinds_pass(self):
        obs = StubObs(collectives=[
            coll(0, {0: 1.0, 1: 1.1}, t_end=1.2,
                 kinds={0: "barrier", 1: "barrier"})])
        assert check_collectives(obs) == []

    def test_mismatched_kinds_flagged_with_rank_groups(self):
        obs = StubObs(collectives=[
            coll(0, {0: 1.0, 1: 1.1, 2: 1.0}, t_end=1.2,
                 kinds={0: "barrier", 1: "bcast", 2: "barrier"})])
        findings = check_collectives(obs)
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == "collective-mismatch"
        assert f.detail["kinds"] == {0: "barrier", 1: "bcast",
                                     2: "barrier"}
        assert "barrier on ranks [0, 2]" in f.summary
        assert "bcast on ranks [1]" in f.summary

    def test_real_run_collectives_agree(self):
        def main(comm):
            comm.barrier()
            comm.allreduce(comm.rank)
            return None

        res = run_world(3, main, timeout=30.0)
        assert check_collectives(res.obs) == []


class TestLeaks:
    def test_unreceived_message_reported(self):
        obs = StubObs(posts=[post(5, src=1, dst=0, t_post=0.5)],
                      consumed=())
        findings = check_leaks(obs)
        assert len(findings) == 1
        assert findings[0].kind == "message-leak"
        assert findings[0].rank == 1
        assert findings[0].detail["msg_id"] == 5

    def test_real_leak_detected_at_finalize(self):
        """A send nobody receives shows up in the pending-send table."""

        def main(comm):
            if comm.rank == 0:
                comm.send("orphan", dest=1, tag=99)
            comm.barrier()
            return None

        res = run_world(2, main, timeout=30.0)
        findings = analyze_obs(res.obs)
        leaks = [f for f in findings if f.kind == "message-leak"]
        assert len(leaks) == 1
        assert "tag 99" in leaks[0].summary

    def test_clean_exchange_has_no_leaks(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=1)
                return None
            return comm.recv(source=0, tag=1)[0]

        res = run_world(2, main, timeout=30.0)
        assert check_leaks(res.obs) == []
