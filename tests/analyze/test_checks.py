"""Collective-mismatch and message-leak checkers."""

from repro.analyze import analyze_obs, check_collectives, check_leaks
from repro.simmpi import run_world
from tests.analyze.tracestub import StubObs, coll, post


class TestCollectives:
    def test_matching_kinds_pass(self):
        obs = StubObs(collectives=[
            coll(0, {0: 1.0, 1: 1.1}, t_end=1.2,
                 kinds={0: "barrier", 1: "barrier"})])
        assert check_collectives(obs) == []

    def test_mismatched_kinds_flagged_with_rank_groups(self):
        obs = StubObs(collectives=[
            coll(0, {0: 1.0, 1: 1.1, 2: 1.0}, t_end=1.2,
                 kinds={0: "barrier", 1: "bcast", 2: "barrier"})])
        findings = check_collectives(obs)
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == "collective-mismatch"
        assert f.detail["kinds"] == {0: "barrier", 1: "bcast",
                                     2: "barrier"}
        assert "barrier on ranks [0, 2]" in f.summary
        assert "bcast on ranks [1]" in f.summary

    def test_real_run_collectives_agree(self):
        def main(comm):
            comm.barrier()
            comm.allreduce(comm.rank)
            return None

        res = run_world(3, main, timeout=30.0)
        assert check_collectives(res.obs) == []


class TestLeaks:
    def test_unreceived_message_reported(self):
        obs = StubObs(posts=[post(5, src=1, dst=0, t_post=0.5)],
                      consumed=())
        findings = check_leaks(obs)
        assert len(findings) == 1
        assert findings[0].kind == "message-leak"
        assert findings[0].rank == 1
        assert findings[0].detail["msg_id"] == 5

    def test_real_leak_detected_at_finalize(self):
        """A send nobody receives shows up in the pending-send table."""

        def main(comm):
            if comm.rank == 0:
                comm.send("orphan", dest=1, tag=99)
            comm.barrier()
            return None

        res = run_world(2, main, timeout=30.0)
        findings = analyze_obs(res.obs)
        leaks = [f for f in findings if f.kind == "message-leak"]
        assert len(leaks) == 1
        assert "tag 99" in leaks[0].summary

    def test_clean_exchange_has_no_leaks(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=1)
                return None
            return comm.recv(source=0, tag=1)[0]

        res = run_world(2, main, timeout=30.0)
        assert check_leaks(res.obs) == []


class TestEpochLeaks:
    def test_open_acquisition_reported_with_epoch_id(self):
        from types import SimpleNamespace

        from repro.analyze import check_stream_leaks
        from repro.obs.streamstat import StreamLedger

        ledger = StreamLedger()
        ledger.publish("sim", 0, 0, 0.1, 1)
        ledger.publish("sim", 1, 0, 0.2, 2)
        ledger.acquire("sim", 0, 1, 0.3)
        ledger.acquire("sim", 1, 1, 0.4)
        ledger.release("sim", 0, 1, 0.5)  # hwm 0: epoch 1 still open
        findings = check_stream_leaks(SimpleNamespace(stream=ledger))
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == "epoch-leak"
        assert f.rank == 1
        assert "epoch 1" in f.summary
        assert f.detail == {"stream": "sim", "epoch": 1, "rank": 1}

    def test_cumulative_release_closes_earlier_epochs(self):
        from types import SimpleNamespace

        from repro.analyze import check_stream_leaks
        from repro.obs.streamstat import StreamLedger

        ledger = StreamLedger()
        ledger.acquire("sim", 0, 1, 0.1)
        ledger.acquire("sim", 3, 1, 0.2)  # caught-up consumer skipped
        ledger.release("sim", 3, 1, 0.3)  # hwm 3 covers everything
        assert check_stream_leaks(SimpleNamespace(stream=ledger)) == []

    def test_obs_without_ledger_is_clean(self):
        from repro.analyze import check_stream_leaks

        assert check_stream_leaks(StubObs()) == []

    def test_real_retained_epoch_surfaces_in_analyze_obs(self):
        """A consumer that retains its last epoch and exits without
        releasing it: the run finishes, but ``analyze_obs`` names the
        leaked epoch."""
        import numpy as np

        import repro.h5 as h5
        from repro.h5.native import NativeVOL
        from repro.lowfive import DistMetadataVOL
        from repro.pfs import PFSStore
        from repro.workflow import Workflow

        shape = (8, 4)

        def make_vol(ctx):
            return ctx.singleton("vol", lambda: DistMetadataVOL(
                comm=ctx.comm, under=NativeVOL(PFSStore())))

        def producer(ctx):
            vol = make_vol(ctx)
            with ctx.stream_producer("consumer", "sim", vol) as prod:
                for step in range(2):
                    with prod.epoch() as f:
                        d = f.create_dataset("g", shape=shape,
                                             dtype=h5.UINT64)
                        d.write(np.full(shape, step,
                                        dtype=np.uint64).ravel())
            return True

        def consumer(ctx):
            vol = make_vol(ctx)
            with ctx.stream_consumer("producer", "sim", vol) as cons:
                for ep in cons.epochs():
                    with ep:
                        if ep.id == 1:
                            ep.retain()  # never released
            return True

        wf = Workflow()
        wf.add_task("producer", 1, producer)
        wf.add_task("consumer", 1, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run(timeout=60.0)
        leaks = [f for f in analyze_obs(res.obs)
                 if f.kind == "epoch-leak"]
        assert len(leaks) == 1
        assert leaks[0].detail == {"stream": "sim", "epoch": 1,
                                   "rank": 1}
