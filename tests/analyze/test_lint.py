"""ANL00x lint rules: detection, suppression, allowlists."""

from repro.analyze.lint import (
    DEFAULT_ALLOWLIST,
    RULES,
    lint_paths,
    lint_source,
)


def codes(src, path="x.py", skip=frozenset()):
    return [v.code for v in lint_source(src, path, skip)]


class TestWallClock:
    def test_time_module_calls_flagged(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic() + time.perf_counter()\n")
        assert codes(src) == ["ANL001", "ANL001"]

    def test_from_import_alias_resolved(self):
        src = ("from time import perf_counter as pc\n"
               "def f():\n"
               "    return pc()\n")
        assert codes(src) == ["ANL001"]

    def test_datetime_now_flagged(self):
        src = ("import datetime\n"
               "def f():\n"
               "    return datetime.datetime.now()\n")
        assert codes(src) == ["ANL001"]

    def test_virtual_time_calls_pass(self):
        src = ("def f(comm):\n"
               "    comm.compute(1e-3)\n"
               "    return comm.clock\n")
        assert codes(src) == []


class TestRequests:
    def test_discarded_request_flagged(self):
        src = ("def f(comm):\n"
               "    comm.isend(1, dest=0)\n")
        assert codes(src) == ["ANL002"]

    def test_never_waited_name_flagged(self):
        src = ("def f(comm):\n"
               "    r = comm.irecv(source=0)\n"
               "    return None\n")
        assert codes(src) == ["ANL002"]

    def test_waited_request_passes(self):
        src = ("def f(comm):\n"
               "    r = comm.irecv(source=0)\n"
               "    return r.wait()\n")
        assert codes(src) == []

    def test_tested_request_passes(self):
        src = ("def f(comm):\n"
               "    r = comm.isend(1, dest=0)\n"
               "    while not r.test():\n"
               "        pass\n")
        assert codes(src) == []

    def test_escaping_request_passes(self):
        src = ("def f(comm, reqs):\n"
               "    r = comm.isend(1, dest=0)\n"
               "    reqs.append(r)\n"
               "    s = comm.isend(2, dest=1)\n"
               "    return s\n")
        assert codes(src) == []


class TestThreading:
    def test_thread_and_event_flagged(self):
        src = ("import threading\n"
               "def f():\n"
               "    t = threading.Thread(target=f)\n"
               "    e = threading.Event()\n"
               "    return t, e\n")
        assert codes(src) == ["ANL003", "ANL003"]

    def test_locks_are_allowed(self):
        src = ("import threading\n"
               "def f():\n"
               "    return threading.Lock(), threading.RLock()\n")
        assert codes(src) == []

    def test_engine_allowlist_covers_engine_file(self):
        src = ("import threading\n"
               "def f():\n"
               "    return threading.Condition()\n")
        skip = frozenset(
            c for c, suffixes in DEFAULT_ALLOWLIST.items()
            if any("src/repro/simmpi/engine.py".endswith(s)
                   for s in suffixes))
        assert codes(src, "src/repro/simmpi/engine.py", skip) == []


class TestClockEquality:
    def test_clock_equality_flagged(self):
        src = ("def f(self, other):\n"
               "    return self.clock == other.clock\n")
        assert codes(src) == ["ANL004"]

    def test_vtime_inequality_flagged(self):
        src = ("def f(a_vtime, b):\n"
               "    return a_vtime != b\n")
        assert codes(src) == ["ANL004"]

    def test_clock_comparison_with_tolerance_passes(self):
        src = ("def f(self, other, tol):\n"
               "    return abs(self.clock - other.clock) < tol\n")
        assert codes(src) == []


class TestSuppression:
    def test_noqa_with_code_suppresses(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic()  # noqa: ANL001\n")
        assert codes(src) == []

    def test_bare_noqa_suppresses_everything(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic()  # noqa\n")
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic()  # noqa: ANL003\n")
        assert codes(src) == ["ANL001"]


class TestRepoIsClean:
    def test_src_examples_benchmarks_lint_clean(self):
        """The acceptance gate: zero custom-lint violations on the
        tree, with only the documented allowlist."""
        import os

        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        paths = [os.path.join(root, d)
                 for d in ("src", "examples", "benchmarks")]
        violations = lint_paths(paths)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_rule_table_is_complete(self):
        assert set(RULES) == {"ANL001", "ANL002", "ANL003", "ANL004"}
