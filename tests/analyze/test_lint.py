"""ANL00x lint rules: detection, suppression, allowlists."""

from repro.analyze.lint import (
    DEFAULT_ALLOWLIST,
    RULES,
    lint_paths,
    lint_source,
)


def codes(src, path="x.py", skip=frozenset()):
    return [v.code for v in lint_source(src, path, skip)]


class TestWallClock:
    def test_time_module_calls_flagged(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic() + time.perf_counter()\n")
        assert codes(src) == ["ANL001", "ANL001"]

    def test_from_import_alias_resolved(self):
        src = ("from time import perf_counter as pc\n"
               "def f():\n"
               "    return pc()\n")
        assert codes(src) == ["ANL001"]

    def test_datetime_now_flagged(self):
        src = ("import datetime\n"
               "def f():\n"
               "    return datetime.datetime.now()\n")
        assert codes(src) == ["ANL001"]

    def test_virtual_time_calls_pass(self):
        src = ("def f(comm):\n"
               "    comm.compute(1e-3)\n"
               "    return comm.clock\n")
        assert codes(src) == []


class TestRequests:
    def test_discarded_request_flagged(self):
        src = ("def f(comm):\n"
               "    comm.isend(1, dest=0)\n")
        assert codes(src) == ["ANL002"]

    def test_never_waited_name_flagged(self):
        src = ("def f(comm):\n"
               "    r = comm.irecv(source=0)\n"
               "    return None\n")
        assert codes(src) == ["ANL002"]

    def test_waited_request_passes(self):
        src = ("def f(comm):\n"
               "    r = comm.irecv(source=0)\n"
               "    return r.wait()\n")
        assert codes(src) == []

    def test_tested_request_passes(self):
        src = ("def f(comm):\n"
               "    r = comm.isend(1, dest=0)\n"
               "    while not r.test():\n"
               "        pass\n")
        assert codes(src) == []

    def test_escaping_request_passes(self):
        src = ("def f(comm, reqs):\n"
               "    r = comm.isend(1, dest=0)\n"
               "    reqs.append(r)\n"
               "    s = comm.isend(2, dest=1)\n"
               "    return s\n")
        assert codes(src) == []

    def test_comprehension_container_waited_passes(self):
        src = ("def f(comm, wait_all):\n"
               "    reqs = [comm.isend(i, dest=i) for i in range(4)]\n"
               "    wait_all(reqs)\n")
        assert codes(src) == []

    def test_dropped_container_of_requests_flagged(self):
        """A list built from isend results that nobody waits leaks
        every request in it -- the pre-rework false negative."""
        src = ("def f(comm):\n"
               "    reqs = [comm.isend(i, dest=i) for i in range(4)]\n"
               "    return None\n")
        assert codes(src) == ["ANL002"]

    def test_literal_container_drop_flags_each_request(self):
        src = ("def f(comm):\n"
               "    reqs = [comm.isend(1, dest=0), comm.isend(2, dest=1)]\n")
        assert codes(src) == ["ANL002", "ANL002"]

    def test_append_to_local_container_still_tracked(self):
        """``append`` onto a *local* list is not an escape: the list
        must still reach a wait."""
        src = ("def f(comm):\n"
               "    reqs = []\n"
               "    for i in range(3):\n"
               "        reqs.append(comm.isend(i, dest=i))\n")
        assert codes(src) == ["ANL002"]

    def test_iterated_container_counts_as_waited(self):
        src = ("def f(comm):\n"
               "    reqs = []\n"
               "    for i in range(3):\n"
               "        reqs.append(comm.isend(i, dest=i))\n"
               "    for r in reqs:\n"
               "        r.wait()\n")
        assert codes(src) == []

    def test_tuple_unpacking_tracks_each_request(self):
        src = ("def f(comm):\n"
               "    ra, rb = comm.isend(1, dest=0), comm.irecv(source=0)\n"
               "    ra.wait()\n")
        assert codes(src) == ["ANL002"]

    def test_tuple_unpacking_both_waited_passes(self):
        src = ("def f(comm):\n"
               "    ra, rb = comm.isend(1, dest=0), comm.irecv(source=0)\n"
               "    ra.wait()\n"
               "    return rb.wait()\n")
        assert codes(src) == []

    def test_attribute_store_is_unknown_escape(self):
        src = ("def f(self, comm):\n"
               "    r = comm.isend(1, dest=0)\n"
               "    self.pending = r\n")
        [v] = lint_source(src, "x.py")
        assert v.code == "ANL002"
        assert "unknown escape" in v.message

    def test_returned_container_passes(self):
        src = ("def f(comm):\n"
               "    reqs = [comm.isend(1, dest=0)]\n"
               "    return reqs\n")
        assert codes(src) == []


class TestThreading:
    def test_thread_and_event_flagged(self):
        src = ("import threading\n"
               "def f():\n"
               "    t = threading.Thread(target=f)\n"
               "    e = threading.Event()\n"
               "    return t, e\n")
        assert codes(src) == ["ANL003", "ANL003"]

    def test_locks_are_allowed(self):
        src = ("import threading\n"
               "def f():\n"
               "    return threading.Lock(), threading.RLock()\n")
        assert codes(src) == []

    def test_engine_allowlist_covers_engine_file(self):
        src = ("import threading\n"
               "def f():\n"
               "    return threading.Condition()\n")
        skip = frozenset(
            c for c, suffixes in DEFAULT_ALLOWLIST.items()
            if any("src/repro/simmpi/engine.py".endswith(s)
                   for s in suffixes))
        assert codes(src, "src/repro/simmpi/engine.py", skip) == []


class TestClockEquality:
    def test_clock_equality_flagged(self):
        src = ("def f(self, other):\n"
               "    return self.clock == other.clock\n")
        assert codes(src) == ["ANL004"]

    def test_vtime_inequality_flagged(self):
        src = ("def f(a_vtime, b):\n"
               "    return a_vtime != b\n")
        assert codes(src) == ["ANL004"]

    def test_clock_comparison_with_tolerance_passes(self):
        src = ("def f(self, other, tol):\n"
               "    return abs(self.clock - other.clock) < tol\n")
        assert codes(src) == []


class TestFileLifecycle:
    OPEN = "import repro.h5 as h5\n"

    def test_unclosed_named_file_flagged(self):
        src = (self.OPEN
               + "def f(path):\n"
               "    f = h5.File(path, 'r')\n"
               "    return f['d'].read()\n")
        assert codes(src) == ["ANL005"]

    def test_with_managed_file_passes(self):
        src = (self.OPEN
               + "def f(path):\n"
               "    with h5.File(path, 'r') as f:\n"
               "        return f['d'].read()\n")
        assert codes(src) == []

    def test_closed_file_passes(self):
        src = (self.OPEN
               + "def f(path):\n"
               "    f = h5.File(path, 'r')\n"
               "    out = f['d'].read()\n"
               "    f.close()\n"
               "    return out\n")
        assert codes(src) == []

    def test_with_on_assigned_name_passes(self):
        src = (self.OPEN
               + "def f(path):\n"
               "    f = h5.File(path, 'w')\n"
               "    with f:\n"
               "        f.create_dataset('d', shape=(1,), dtype=int)\n")
        assert codes(src) == []

    def test_handed_off_file_passes(self):
        src = (self.OPEN
               + "def f(path, sink):\n"
               "    f = h5.File(path, 'r')\n"
               "    sink(f)\n"
               "    g = h5.File(path, 'r')\n"
               "    return g\n")
        assert codes(src) == []

    def test_unrelated_file_constructor_passes(self):
        src = ("import zipfile\n"
               "def f(path):\n"
               "    z = zipfile.ZipFile(path)\n"
               "    return z.namelist()\n")
        assert codes(src) == []


class TestExceptionSwallowing:
    def test_bare_except_flagged(self):
        src = ("def f(run):\n"
               "    try:\n"
               "        run()\n"
               "    except:\n"
               "        pass\n")
        assert codes(src) == ["ANL006"]

    def test_except_exception_flagged(self):
        src = ("def f(run):\n"
               "    try:\n"
               "        run()\n"
               "    except Exception:\n"
               "        pass\n")
        assert codes(src) == ["ANL006"]

    def test_reraise_passes(self):
        src = ("def f(run, log):\n"
               "    try:\n"
               "        run()\n"
               "    except Exception as exc:\n"
               "        log(exc)\n"
               "        raise\n")
        assert codes(src) == []

    def test_narrow_except_passes(self):
        src = ("def f(run):\n"
               "    try:\n"
               "        run()\n"
               "    except ValueError:\n"
               "        pass\n")
        assert codes(src) == []


class TestSuppression:
    def test_noqa_with_code_suppresses(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic()  # noqa: ANL001\n")
        assert codes(src) == []

    def test_bare_noqa_suppresses_everything(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic()  # noqa\n")
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = ("import time\n"
               "def f():\n"
               "    return time.monotonic()  # noqa: ANL003\n")
        assert codes(src) == ["ANL001"]


class TestRepoIsClean:
    def test_whole_tree_lint_clean(self):
        """The acceptance gate: zero custom-lint violations on the
        tree -- src, examples, benchmarks AND tests -- with only the
        documented allowlist plus per-line noqa at intentional
        fixtures (watchdog tests, determinism pins, crash fixtures)."""
        import os

        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        paths = [os.path.join(root, d)
                 for d in ("src", "examples", "benchmarks", "tests")]
        violations = lint_paths(paths)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_rule_table_is_complete(self):
        assert set(RULES) == {"ANL001", "ANL002", "ANL003", "ANL004",
                              "ANL005", "ANL006"}
