"""PRO003 exemplar: recv-before-send ring (classic deadlock).

Every rank blocks receiving from its predecessor before sending to
its successor, so no send is ever posted. The closed-world replay
stalls with the wait-for cycle ``0 -> 2 -> 1 -> 0``; running it for
real raises :class:`~repro.simmpi.DeadlockError` whose explanation
renders the same cycle.
"""

from repro.workflow import Workflow


def ring(ctx):
    comm = ctx.comm
    nxt = (ctx.rank + 1) % ctx.size
    prv = (ctx.rank - 1) % ctx.size
    token, _ = comm.recv(source=prv, tag=0)  # PROTO: PRO003
    comm.send(token, nxt, tag=0)
    return None


def build_workflow():
    wf = Workflow()
    wf.add_task("ring", nprocs=3, main=ring)
    return wf
