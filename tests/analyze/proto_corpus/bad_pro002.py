"""PRO002 exemplar: a send nobody ever receives.

Rank 0 posts one message to rank 1; rank 1 never receives anything.
The closed-world replay finishes with the message still queued, so
the static verdict is an unmatched point-to-point send; dynamically
the run completes and the ``message-leak`` check reports the same
orphan at finalize.
"""

from repro.workflow import Workflow


def body(ctx):
    comm = ctx.comm
    if comm.rank == 0:
        comm.send("orphan", 1, tag=99)  # PROTO: PRO002
    comm.barrier()
    return None


def build_workflow():
    wf = Workflow()
    wf.add_task("orphan", nprocs=2, main=body)
    return wf
