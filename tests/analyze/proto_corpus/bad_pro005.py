"""PRO005 exemplar: a string tag that can never match an int tag.

Rank 0 sends with ``tag=7``; rank 1 receives with ``tag="seven"``.
Tags are matched by equality, so the receive can never complete.
Statically the literal non-int tag is a type confusion; dynamically
rank 1 blocks forever and the watchdog raises
:class:`~repro.simmpi.DeadlockError` (starvation: rank 0 already
exited, so there is no cycle -- just a receive nothing will wake).
"""

from repro.workflow import Workflow


def body(ctx):
    comm = ctx.comm
    if comm.rank == 0:
        comm.send(123, 1, tag=7)
    else:
        comm.recv(source=0, tag="seven")  # PROTO: PRO005
    return None


def build_workflow():
    wf = Workflow()
    wf.add_task("confused", nprocs=2, main=body)
    return wf
