"""PRO001 exemplar: collective divergence on a rank guard.

Rank 0 enters a ``bcast`` while every other rank enters ``barrier``
at the same rendezvous. Statically this is a collective-sequence
divergence across the arms of ``if comm.rank == 0:``; dynamically the
generation-matched rendezvous still completes (the engine pairs
collectives by arrival order, not by kind), and the
``collective-mismatch`` dynamic check flags the mixed kinds.
"""

from repro.workflow import Workflow


def body(ctx):
    comm = ctx.comm
    if comm.rank == 0:
        comm.bcast(17, root=0)
    else:
        comm.barrier()  # PROTO: PRO001
    return None


def build_workflow():
    wf = Workflow()
    wf.add_task("diverge", nprocs=3, main=body)
    return wf
