"""PRO004 exemplar: a retained stream epoch nobody releases.

The consumer retains the last epoch to "keep it for later" and then
leaves the stream without ever releasing it. Statically the epoch
handle from ``next_epoch()`` is still live on the exit path;
dynamically the run completes but the producer keeps the epoch in its
live window forever, which the ``epoch-leak`` check reports.
"""

import numpy as np

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.workflow import Workflow

SHAPE = (8, 4)


def make_vol(ctx):
    return ctx.singleton("vol", lambda: DistMetadataVOL(
        comm=ctx.comm, under=NativeVOL(PFSStore())))


def producer(ctx):
    vol = make_vol(ctx)
    with ctx.stream_producer("consumer", "sim", vol) as prod:
        for step in range(2):
            with prod.epoch() as f:
                d = f.create_dataset("g", shape=SHAPE, dtype=h5.UINT64)
                d.write(np.full(SHAPE, step, dtype=np.uint64).ravel())
    return True


def consumer(ctx):
    vol = make_vol(ctx)
    with ctx.stream_consumer("producer", "sim", vol) as cons:
        while True:
            ep = cons.next_epoch()  # PROTO: PRO004
            if ep is None:
                break
            with ep:
                ep.file["g"].read()
                if ep.id == 1:
                    ep.retain()  # kept live, never released
    return True


def build_workflow():
    wf = Workflow()
    wf.add_task("producer", nprocs=1, main=producer)
    wf.add_task("consumer", nprocs=1, main=consumer)
    wf.add_link("producer", "consumer")
    return wf
