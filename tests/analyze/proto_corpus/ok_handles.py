"""Clean exemplar: every legitimate handle-lifecycle shape.

``with``-managed files (including early returns out of the block),
explicit ``close()`` on every path, escape by return, escape into a
container, and a retained epoch that *is* released later. PRO004
must stay silent on all of them.
"""

import repro.h5 as h5
from repro.h5.native import NativeVOL


def with_managed(path):
    with h5.File(path, "w", vol=NativeVOL()) as f:
        d = f.create_dataset("d", shape=(4,), dtype=h5.UINT64)
        if path.endswith(".tmp"):
            return None
        d.write([1, 2, 3, 4])
    return path


def closed_on_both_arms(path, flag):
    f = h5.File(path, "r", vol=NativeVOL())
    if flag:
        out = f["d"].read()
        f.close()
        return out
    f.close()
    return None


def escapes_by_return(path):
    return h5.File(path, "r", vol=NativeVOL())


def escapes_into_registry(path, registry):
    f = h5.File(path, "a", vol=NativeVOL())
    registry[path] = f
    return registry


def retain_then_release(ctx):
    vol = ctx.singleton("vol", lambda: NativeVOL())
    with ctx.stream_consumer("producer", "sim", vol) as cons:
        ep = cons.next_epoch()
        if ep is not None:
            ep.retain()
            ep.file["g"].read()
            ep.release()
    return True
