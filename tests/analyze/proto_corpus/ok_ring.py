"""Clean exemplar: send-before-recv ring.

The mirror image of ``bad_pro003``: every rank posts its (buffered)
send before blocking on the receive, so the replay drains cleanly.
The checker must stay silent here -- same shape, correct order.
"""

from repro.workflow import Workflow


def ring(ctx):
    comm = ctx.comm
    nxt = (ctx.rank + 1) % ctx.size
    prv = (ctx.rank - 1) % ctx.size
    comm.send(ctx.rank, nxt, tag=0)
    token, _ = comm.recv(source=prv, tag=0)
    comm.barrier()
    return token


def build_workflow():
    wf = Workflow()
    wf.add_task("ring", nprocs=3, main=ring)
    return wf
