"""Clean exemplar: rank guards the symbolic domain must resolve.

Every corner the domain is supposed to handle, in protocol-correct
form: a rank alias (``me = comm.rank``), guard negation spelled three
ways, tag arithmetic (``BASE + me`` matching ``BASE + src``), and a
root loop over ``range(nprocs)``. Any finding here is a false
positive in the symbolic tier.
"""

from repro.workflow import Workflow

BASE = 100


def fanin(ctx):
    comm = ctx.comm
    me = comm.rank
    n = comm.size
    if me != 0:
        comm.send(me, 0, tag=BASE + me)
    else:
        for src in range(1, n):
            comm.recv(source=src, tag=BASE + src)
    comm.barrier()
    if not me == 0:
        out = comm.bcast(None, root=0)
    else:
        out = comm.bcast("payload", root=0)
    return out


def build_workflow():
    wf = Workflow()
    wf.add_task("fanin", nprocs=4, main=fanin)
    return wf
