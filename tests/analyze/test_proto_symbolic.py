"""Symbolic-domain corners of the PRO00x checker.

Each test feeds a small rank-body source through ``check_source`` and
asserts a specific finding is present *or absent*: rank aliases
(``me = comm.rank``), loops over ``range(nprocs)``, tag arithmetic,
and guard negation. Plus unit coverage of the symbolic domain and the
CFG builder's conservative bail-outs.
"""

import ast

from repro.analyze.proto import check_source
from repro.analyze.proto.cfg import Unsupported, build_cfg
from repro.analyze.proto.domain import (
    RANK,
    SYM_NPROCS,
    SYM_RANK,
    Binding,
    Sym,
    compare,
    const,
    evaluate,
)
from repro.analyze.proto.interp import run_function


def rules(src):
    return [f.rule for f in check_source(src, "x.py")]


class TestRankAliases:
    def test_alias_guard_divergence_is_caught(self):
        """``me = comm.rank`` must be as transparent as
        ``comm.rank`` itself."""
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    me = comm.rank\n"
               "    if me == 0:\n"
               "        comm.bcast(1, root=0)\n"
               "    else:\n"
               "        comm.barrier()\n")
        assert rules(src) == ["PRO001"]

    def test_alias_and_attribute_guards_share_identity(self):
        """The same rank condition spelled through an alias and
        through the attribute must resolve to one guard: the two
        complementary branches below give *every* rank exactly one
        barrier, but only if the checker never explores the
        contradictory both-false combination (a phantom PRO001)."""
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    me = comm.rank\n"
               "    if me == 0:\n"
               "        comm.barrier()\n"
               "    if comm.rank != 0:\n"
               "        comm.barrier()\n")
        assert rules(src) == []

    def test_arithmetic_on_alias_stays_symbolic(self):
        """``nxt = (me + 1) % size`` is a peer expression, not a
        divergence."""
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    me = comm.rank\n"
               "    nxt = (me + 1) % comm.size\n"
               "    comm.send(me, nxt, tag=0)\n"
               "    comm.recv(source=(me - 1) % comm.size, tag=0)\n"
               "    comm.barrier()\n")
        assert rules(src) == []


class TestRangeNprocsLoops:
    def test_collective_inside_guarded_nprocs_loop_diverges(self):
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    if comm.rank == 0:\n"
               "        for i in range(comm.size):\n"
               "            comm.barrier()\n")
        assert rules(src) == ["PRO001"]

    def test_fanin_over_range_nprocs_is_clean(self):
        """Root receiving from every other rank while non-roots send
        once is the canonical clean fan-in -- no divergence."""
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    if comm.rank == 0:\n"
               "        for src in range(1, comm.size):\n"
               "            comm.recv(source=src, tag=5)\n"
               "    else:\n"
               "        comm.send(1, 0, tag=5)\n"
               "    comm.barrier()\n")
        assert rules(src) == []

    def test_concrete_range_unrolls(self):
        """A literal ``range(2)`` of collectives on every rank is
        uniform, not divergent."""
        src = ("def body(ctx):\n"
               "    for step in range(2):\n"
               "        ctx.comm.barrier()\n")
        assert rules(src) == []


class TestTagArithmetic:
    def test_symbolic_tag_expression_is_not_confused(self):
        src = ("BASE = 100\n"
               "def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    me = comm.rank\n"
               "    if me != 0:\n"
               "        comm.send(me, 0, tag=100 + me)\n"
               "    comm.barrier()\n")
        assert "PRO005" not in rules(src)

    def test_literal_string_tag_is_confused(self):
        src = ("def body(ctx):\n"
               "    ctx.comm.recv(source=0, tag='seven')\n")
        assert rules(src) == ["PRO005"]

    def test_bool_tag_is_confused(self):
        """``True`` is an int subtype but never a deliberate tag."""
        src = ("def body(ctx):\n"
               "    ctx.comm.send(1, 0, tag=True)\n")
        assert rules(src) == ["PRO005"]

    def test_float_dest_is_confused(self):
        src = ("def body(ctx):\n"
               "    ctx.comm.send(1, 1.5, tag=0)\n")
        assert rules(src) == ["PRO005"]


class TestGuardNegation:
    def test_not_eq_and_ne_spellings_share_identity(self):
        """``if not me == 0`` and ``if me == 0`` are complementary
        spellings of one guard: every rank gets exactly one barrier,
        so any PRO001 here would be a canonicalization bug."""
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    me = comm.rank\n"
               "    if not me == 0:\n"
               "        comm.barrier()\n"
               "    if me == 0:\n"
               "        comm.barrier()\n")
        assert rules(src) == []

    def test_negated_guard_divergence_is_still_caught(self):
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    if not comm.rank == 0:\n"
               "        comm.barrier()\n"
               "    else:\n"
               "        comm.bcast(1, root=0)\n")
        assert rules(src) == ["PRO001"]

    def test_complementary_guards_cover_all_ranks_cleanly(self):
        src = ("def body(ctx):\n"
               "    comm = ctx.comm\n"
               "    if comm.rank == 0:\n"
               "        comm.barrier()\n"
               "    if comm.rank != 0:\n"
               "        comm.barrier()\n")
        assert rules(src) == []


class TestHandlePaths:
    def test_early_return_leaks_open_file(self):
        src = ("import repro.h5 as h5\n"
               "def body(path, flag):\n"
               "    f = h5.File(path, 'r')\n"
               "    if flag:\n"
               "        return None\n"
               "    f.close()\n")
        assert rules(src) == ["PRO004"]

    def test_with_block_closes_on_early_return(self):
        src = ("import repro.h5 as h5\n"
               "def body(path, flag):\n"
               "    with h5.File(path, 'r') as f:\n"
               "        if flag:\n"
               "            return None\n"
               "        f['d'].read()\n")
        assert rules(src) == []

    def test_exception_route_leaks_open_file(self):
        src = ("import repro.h5 as h5\n"
               "def body(path, work):\n"
               "    f = h5.File(path, 'r')\n"
               "    try:\n"
               "        work()\n"
               "    except ValueError:\n"
               "        return None\n"
               "    f.close()\n")
        assert rules(src) == ["PRO004"]

    def test_pytest_raises_region_is_exempt(self):
        src = ("import pytest\n"
               "import repro.h5 as h5\n"
               "def body(path):\n"
               "    with pytest.raises(OSError):\n"
               "        h5.File(path, 'r')\n")
        assert rules(src) == []


class TestDomain:
    def test_rank_offsets_compare_decidably(self):
        rank1 = Sym(RANK, off=1)
        assert compare(ast.Gt(), rank1, SYM_RANK) is True
        assert compare(ast.Eq(), rank1, SYM_RANK) is False
        assert compare(ast.Eq(), SYM_RANK, SYM_RANK) is True

    def test_rank_vs_const_is_undecidable(self):
        assert compare(ast.Eq(), SYM_RANK, const(0)) is None

    def test_binding_makes_symbols_concrete(self):
        b = Binding(rank=2, nprocs=4)
        assert evaluate(SYM_RANK, b) == 2
        assert evaluate(SYM_NPROCS, b) == 4
        assert evaluate(Sym(RANK, off=1), b) == 3
        assert compare(ast.Eq(), SYM_RANK, const(2), b) is True

    def test_render_is_stable(self):
        assert SYM_RANK.render() == "rank"
        assert Sym(RANK, off=-1).render() == "rank-1"
        assert const(7).render() == "7"


class TestConservativeBailouts:
    def test_match_statement_is_unsupported(self):
        fn = ast.parse("def f(x):\n"
                       "    match x:\n"
                       "        case 1:\n"
                       "            pass\n").body[0]
        try:
            build_cfg(fn)
        except Unsupported:
            pass
        else:  # pragma: no cover - defends the conservative contract
            raise AssertionError("match must be Unsupported")

    def test_unsupported_function_yields_no_findings(self):
        src = ("async def body(ctx):\n"
               "    ctx.comm.recv(source=0, tag='bad')\n")
        assert rules(src) == []

    def test_opaque_comm_escape_stands_down(self):
        """Handing the comm to an unknown helper makes every verdict
        unsound -- the checker must go silent, not guess."""
        src = ("def body(ctx, helper):\n"
               "    comm = ctx.comm\n"
               "    helper(comm)\n"
               "    if comm.rank == 0:\n"
               "        comm.barrier()\n")
        assert rules(src) == []

    def test_run_function_never_raises_on_weird_input(self):
        fn = ast.parse("def f(x):\n"
                       "    while x:\n"
                       "        x = x - 1\n").body[0]
        res = run_function(fn, "f")
        assert res.paths or not res.complete
