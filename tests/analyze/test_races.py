"""Wildcard-race detection: seeded races fire, clean runs are silent."""

from repro.analyze import analyze_obs, find_races
from repro.faults import FaultPlan, MessageFaultRule
from repro.simmpi import ANY_SOURCE, run_world
from tests.analyze.tracestub import StubObs, match, post


def busy_receiver(comm):
    """Ranks 1..n-1 send to rank 0 while it computes, so every message
    is queued before the first wildcard match."""
    if comm.rank == 0:
        comm.barrier()
        comm.compute(50e-3)
        return [comm.recv(source=ANY_SOURCE, tag=0)[0]
                for _ in range(comm.size - 1)]
    comm.compute(comm.rank * 1e-3)  # rank 1 posts first
    comm.send(comm.rank, dest=0, tag=0)
    comm.barrier()
    return None


def delay_rank1():
    """Deterministically delay rank 1's message past rank 2's arrival."""
    return FaultPlan(0, messages=[
        MessageFaultRule(src=1, dst=0, p_delay=1.0, max_delay=10e-3)])


class TestSeededRace:
    def test_fault_delay_fires_with_candidate_set(self):
        res = run_world(3, busy_receiver, faults=delay_rank1(),
                        timeout=30.0)
        findings = analyze_obs(res.obs)
        races = [f for f in findings if f.kind == "wildcard-race"]
        assert len(races) == 1
        f = races[0]
        assert f.rank == 0
        # the full candidate set is named, including the losing rival
        cands = {c["msg_id"] for c in f.detail["candidates"]}
        rivals = f.detail["rivals"]
        assert len(cands) == 2 and len(rivals) == 1
        assert rivals[0]["why"] == "arrival order inverts post order"
        assert rivals[0]["msg_id"] in cands

    def test_same_seed_runs_report_identical_findings(self):
        runs = [run_world(3, busy_receiver, faults=delay_rank1(),
                          timeout=30.0) for _ in range(2)]
        a, b = ([f.to_dict() for f in analyze_obs(r.obs)] for r in runs)
        assert a == b

    def test_clean_run_is_silent(self):
        res = run_world(3, busy_receiver, timeout=30.0)
        assert analyze_obs(res.obs) == []


def _two_candidate_match(winner_post, winner_arr, rival_post, rival_arr,
                         rival_matched_same_stream=True):
    """A trace with one 2-candidate wildcard match on rank 0; the rival
    either drains into the same stream later or is never received."""
    w_id, r_id = 10, 20
    posts = [post(w_id, src=2, dst=0, t_post=winner_post,
                  t_arrival=winner_arr),
             post(r_id, src=1, dst=0, t_post=rival_post,
                  t_arrival=rival_arr)]
    cands = ((w_id, 2, winner_post, winner_arr),
             (r_id, 1, rival_post, rival_arr))
    matches = [match(dst=0, msg_id=w_id, t_match=1.0, candidates=cands)]
    consumed = {w_id}
    if rival_matched_same_stream:
        matches.append(match(dst=0, msg_id=r_id, t_match=1.1,
                             candidates=((r_id, 1, rival_post,
                                          rival_arr),)))
        consumed.add(r_id)
    return StubObs(posts=posts, matches=matches, consumed=consumed)


class TestDefinition:
    def test_post_order_preserving_pair_is_not_a_race(self):
        obs = _two_candidate_match(winner_post=0.1, winner_arr=0.2,
                                   rival_post=0.3, rival_arr=0.4)
        assert find_races(obs) == []

    def test_inversion_is_a_race_even_within_one_stream(self):
        obs = _two_candidate_match(winner_post=0.3, winner_arr=0.2,
                                   rival_post=0.1, rival_arr=0.4)
        races = find_races(obs)
        assert len(races) == 1
        assert races[0].detail["rivals"][0]["why"] == \
            "arrival order inverts post order"

    def test_same_stream_tie_is_not_a_race(self):
        obs = _two_candidate_match(winner_post=0.1, winner_arr=0.2,
                                   rival_post=0.1, rival_arr=0.2)
        assert find_races(obs) == []

    def test_tie_with_unreceived_rival_is_a_race(self):
        obs = _two_candidate_match(winner_post=0.1, winner_arr=0.2,
                                   rival_post=0.1, rival_arr=0.2,
                                   rival_matched_same_stream=False)
        races = find_races(obs)
        assert len(races) == 1
        assert races[0].detail["rivals"][0]["why"] == "arrival tie"

    def test_causally_ordered_candidates_are_not_racy(self):
        """If the rival's send happens-before the winner's send, the
        pair is ordered no matter what the arrival times say."""
        from tests.analyze.tracestub import edge

        # rank 1 sends m1 to rank 2; rank 2 receives it, then sends m2
        # to rank 0. A forged candidate set pairs m1 and m2.
        posts = [post(1, src=1, dst=2, t_post=0.1, t_arrival=0.15),
                 post(2, src=2, dst=0, t_post=0.3, t_arrival=0.35)]
        edges = [edge(1, src=1, dst=2, t_recv=0.2, t_post=0.1,
                      t_arrival=0.15)]
        # inversion on paper: m1 posted earlier, "arrives" later
        cands = ((2, 2, 0.3, 0.35), (1, 1, 0.1, 0.5))
        obs = StubObs(posts=posts, edges=edges,
                      matches=[match(dst=0, msg_id=2, t_match=1.0,
                                     candidates=cands)],
                      consumed={1, 2})
        assert find_races(obs) == []
