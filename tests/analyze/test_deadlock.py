"""DeadlockError explanations: wait-for cycle and per-rank specs."""

import pytest

from repro.analyze.deadlock import find_cycle
from repro.simmpi import DeadlockError, run_world


class TestExplainer:
    def test_mutual_recv_names_cycle_and_specs(self):
        """Two ranks receiving from each other: the error names the
        wait-for cycle and each rank's (comm, source, tag) spec."""

        def main(comm):
            peer = 1 - comm.rank
            return comm.recv(source=peer, tag=7)

        with pytest.raises(DeadlockError) as exc:
            run_world(2, main, timeout=2.0)
        msg = str(exc.value)
        assert "blocked ranks:" in msg
        assert "wait-for cycle: 0 -> 1 -> 0" in msg
        # each blocked rank's receive spec is spelled out
        assert "recv (comm 1, source 1, tag 7)" in msg
        assert "recv (comm 1, source 0, tag 7)" in msg

    def test_starved_rank_without_cycle_is_explained(self):
        """One rank waiting on a peer that exited: blocked, no cycle."""

        def main(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=3)
            return None  # exits without sending

        with pytest.raises(DeadlockError) as exc:
            run_world(2, main, timeout=2.0)
        msg = str(exc.value)
        assert "rank 0" in msg
        assert "recv (comm 1, source 1, tag 3)" in msg
        assert "no wait-for cycle" in msg


class TestFindCycle:
    def _graph(self, edges):
        """rank -> (desc=None, wakers) adjacency."""
        return {r: (None, tuple(w)) for r, w in edges.items()}

    def test_two_cycle(self):
        g = self._graph({0: [1], 1: [0]})
        assert find_cycle(g) == [0, 1, 0]

    def test_three_cycle_found_deterministically(self):
        g = self._graph({0: [1], 1: [2], 2: [0]})
        assert find_cycle(g) == [0, 1, 2, 0]

    def test_chain_has_no_cycle(self):
        # 0 waits on 1, 1 waits on 2; 2 is not blocked (absent)
        g = self._graph({0: [1], 1: [2]})
        assert find_cycle(g) is None

    def test_self_loop(self):
        g = self._graph({3: [3]})
        assert find_cycle(g) == [3, 3]

    def test_cycle_reachable_only_through_prefix(self):
        # 0 -> 1 -> 2 -> 1: the cycle is [1, 2, 1], entered from 0
        g = self._graph({0: [1], 1: [2], 2: [1]})
        assert find_cycle(g) == [1, 2, 1]
