"""Dynamic cross-validation of the PRO00x corpus.

Each known-bad exemplar under ``proto_corpus/`` is not just a string
the static checker happens to flag -- it is a *real* workflow whose
bug is observable at runtime. These tests execute every exemplar and
assert the dynamic layer reaches the same verdict the static one
predicted: the PRO001 file trips the ``collective-mismatch`` check,
the PRO002 file the ``message-leak`` check, the PRO003 file deadlocks
with the *same* wait-for cycle the static witness printed, the PRO004
file leaks its retained epoch, and the PRO005 file starves its
receiver. That agreement is what makes the static rules trustworthy.
"""

import importlib.util
import os

import pytest

from repro.analyze import (
    COLLECTIVE_MISMATCH,
    EPOCH_LEAK,
    MESSAGE_LEAK,
    analyze_obs,
)
from repro.analyze.proto import check_source
from repro.simmpi import DeadlockError

CORPUS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "proto_corpus")


def load_corpus(name):
    """Import a corpus file as a throwaway module."""
    path = os.path.join(CORPUS, name + ".py")
    spec = importlib.util.spec_from_file_location(
        f"proto_corpus_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def static_findings(name):
    with open(os.path.join(CORPUS, name + ".py"),
              encoding="utf-8") as fh:
        return check_source(fh.read(), name + ".py")


class TestBadExemplarsMisbehaveForReal:
    def test_pro001_collective_divergence_fires_dynamic_mismatch(self):
        res = load_corpus("bad_pro001").build_workflow().run(
            timeout=30.0)
        kinds = [f.kind for f in analyze_obs(res.obs)]
        assert COLLECTIVE_MISMATCH in kinds

    def test_pro002_unmatched_send_fires_dynamic_leak(self):
        res = load_corpus("bad_pro002").build_workflow().run(
            timeout=30.0)
        leaks = [f for f in analyze_obs(res.obs)
                 if f.kind == MESSAGE_LEAK]
        assert leaks, "orphan send must surface as a message leak"

    def test_pro003_static_cycle_matches_dynamic_deadlock(self):
        """The strongest agreement: the static witness and the
        runtime :class:`DeadlockError` render the identical cycle,
        because both run ``find_cycle`` over the same wait-for
        shape."""
        cycle = "wait-for cycle: 0 -> 2 -> 1 -> 0"
        [finding] = static_findings("bad_pro003")
        assert finding.rule == "PRO003"
        assert f"static {cycle}" in finding.message
        with pytest.raises(DeadlockError) as exc:
            load_corpus("bad_pro003").build_workflow().run(timeout=2.0)
        assert cycle in str(exc.value)

    def test_pro004_retained_epoch_fires_dynamic_epoch_leak(self):
        res = load_corpus("bad_pro004").build_workflow().run(
            timeout=60.0)
        leaks = [f for f in analyze_obs(res.obs)
                 if f.kind == EPOCH_LEAK]
        assert len(leaks) == 1
        assert leaks[0].detail["epoch"] == 1

    def test_pro005_tag_confusion_starves_the_receiver(self):
        with pytest.raises(DeadlockError) as exc:
            load_corpus("bad_pro005").build_workflow().run(timeout=2.0)
        # No cycle here -- the sender exits cleanly and rank 1 waits
        # on a tag that can never match.
        assert "no wait-for cycle" in str(exc.value)


class TestOkExemplarsRunClean:
    def test_ok_ring_completes_without_findings(self):
        res = load_corpus("ok_ring").build_workflow().run(timeout=30.0)
        assert analyze_obs(res.obs) == []

    def test_ok_rank_guards_completes_without_findings(self):
        res = load_corpus("ok_rank_guards").build_workflow().run(
            timeout=30.0)
        assert analyze_obs(res.obs) == []
