"""Same-seed attribution determinism (the schedule-analysis payoff).

The wait-state attribution used to wobble across same-seed runs: serve
loops raced on real-thread match order, accounts summed in dict order,
and span ties broke on ids. The serve-loop global-minimum selection,
the wildcard safety gate and per-sender message ids make the whole
pipeline a pure function of the seed; these tests pin that, with the
thread switch interval cranked down so the OS interleaves rank threads
as aggressively as it can.
"""

import json
import sys

import pytest

from repro.analyze import analyze_obs
from repro.bench.drivers import run_lowfive_file, run_lowfive_memory
from repro.synth import SyntheticWorkload


@pytest.fixture(autouse=True)
def aggressive_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


def small_wl():
    return SyntheticWorkload(grid_points_per_proc=2000,
                             particles_per_proc=1000)


def fingerprint(res):
    """Everything attribution-shaped, as one canonical JSON blob."""
    return json.dumps(
        {"vtime": res.vtime, "messages": res.messages,
         "bytes": res.bytes_sent, "attribution": res.attribution},
        sort_keys=True)


class TestSameSeedSameLedgers:
    def test_memory_mode_attribution_is_byte_identical(self):
        runs = [run_lowfive_memory(2, 2, small_wl()) for _ in range(3)]
        prints = [fingerprint(r) for r in runs]
        assert prints[0] == prints[1] == prints[2]

    def test_file_mode_attribution_is_byte_identical(self):
        runs = [run_lowfive_file(2, 2, small_wl()) for _ in range(2)]
        assert fingerprint(runs[0]) == fingerprint(runs[1])


class TestAnalyzerDeterminism:
    def test_findings_and_trace_identical_across_runs(self):
        """Message ids are per-sender streams, so even the raw causal
        trace (posts, matches, candidate sets) replays identically."""
        from repro.bench.drivers import _lowfive_wf, _check
        from repro.perfmodel.transports import THETA_KNL
        from repro.pfs import PFSStore

        def one():
            wf = _lowfive_wf(2, 2, small_wl(), THETA_KNL, "memory",
                             PFSStore())
            res = wf.run(model=THETA_KNL.net, timeout=120.0)
            assert _check(res.returns["consumer"])
            causal = res.obs.causal
            return {
                "posts": [(p.msg_id, p.src, p.dst, p.tag, p.t_post,
                           p.t_arrival) for p in causal.posts()],
                "matches": [(m.dst, m.msg_id, m.t_match, m.candidates)
                            for m in causal.matches()],
                "findings": [f.to_dict() for f in analyze_obs(res.obs)],
            }

        a, b = one(), one()
        assert a == b
        assert a["findings"] == []


def _report_fingerprint(res):
    """Full causal report -- waits included -- as canonical JSON."""
    return json.dumps(
        {"vtime": res.vtime, "messages": res.messages,
         "bytes": res.bytes_sent,
         "report": res.causal_report().to_dict()},
        sort_keys=True)


class TestStagedDeterminism:
    def test_staged_mode_report_is_byte_identical(self):
        """Staged mode has the most concurrent moving parts (three
        tasks, deferred queries, a piece lane); the full report --
        wait attribution included, where ties between same-instant
        waits used to fall into set order -- must still replay
        byte-identically."""
        import numpy as np

        import repro.h5 as h5
        from repro.h5.native import NativeVOL
        from repro.lowfive.vol_staged import (
            StagedMetadataVOL,
            staging_main,
        )
        from repro.pfs import PFSStore
        from repro.synth import (
            consumer_grid_selection,
            grid_values,
            producer_grid_selection,
        )
        from repro.workflow import Workflow

        shape = (12, 8)

        def one():
            def make_vol(ctx, role):
                def factory():
                    vol = StagedMetadataVOL(comm=ctx.comm,
                                            under=NativeVOL(PFSStore()))
                    vol.set_memory("*.h5")
                    inter = ctx.intercomm("staging")
                    if role == "producer":
                        vol.stage_on_close("*.h5", inter)
                    else:
                        vol.set_staged_consumer("*.h5", inter)
                    return vol

                return ctx.singleton("vol", factory)

            def producer(ctx):
                vol = make_vol(ctx, "producer")
                f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
                d = f.create_dataset("d", shape=shape, dtype=h5.UINT64)
                sel = producer_grid_selection(shape, ctx.rank, ctx.size)
                d.write(grid_values(sel, shape), file_select=sel)
                f.close()
                StagedMetadataVOL.finalize_staging(
                    ctx.intercomm("staging"))
                return True

            def consumer(ctx):
                vol = make_vol(ctx, "consumer")
                f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
                sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
                vals = np.asarray(f["d"].read(sel, reshape=False))
                f.close()
                StagedMetadataVOL.finalize_staging(
                    ctx.intercomm("staging"))
                return np.array_equal(vals, grid_values(sel, shape))

            def staging(ctx):
                return staging_main([ctx.intercomm("producer"),
                                     ctx.intercomm("consumer")])

            wf = Workflow()
            wf.add_task("producer", 3, producer)
            wf.add_task("consumer", 2, consumer)
            wf.add_task("staging", 1, staging)
            wf.add_link("producer", "staging")
            wf.add_link("consumer", "staging")
            res = wf.run(timeout=90.0)
            assert all(res.returns["consumer"])
            return _report_fingerprint(res)

        prints = [one() for _ in range(3)]
        assert prints[0] == prints[1] == prints[2]


class TestStreamDeterminism:
    def test_stream_backpressure_report_is_byte_identical(self):
        """A streaming run that gates on backpressure: announcements,
        the catch-up target and the producer's serve order are all
        resolved at deterministic virtual-time points, so the full
        report replays byte-identically."""
        import numpy as np

        import repro.h5 as h5
        from repro.h5.native import NativeVOL
        from repro.lowfive import DistMetadataVOL, StreamConfig
        from repro.pfs import PFSStore
        from repro.workflow import Workflow

        shape = (10, 6)

        def one():
            def make_vol(ctx):
                return ctx.singleton("vol", lambda: DistMetadataVOL(
                    comm=ctx.comm, under=NativeVOL(PFSStore())))

            def producer(ctx):
                vol = make_vol(ctx)
                with ctx.stream_producer(
                        "consumer", "sim", vol,
                        StreamConfig(max_lag=2)) as prod:
                    for step in range(5):
                        with prod.epoch() as f:
                            d = f.create_dataset("g", shape=shape,
                                                 dtype=h5.UINT64)
                            d.write(np.full(shape, step,
                                            dtype=np.uint64).ravel())
                return True

            def consumer(ctx):
                vol = make_vol(ctx)
                seen = []
                with ctx.stream_consumer("producer", "sim",
                                         vol) as cons:
                    for ep in cons.epochs():
                        with ep:
                            seen.append(ep.id)
                        ctx.comm.compute(0.05)
                return seen

            wf = Workflow()
            wf.add_task("producer", 1, producer)
            wf.add_task("consumer", 1, consumer)
            wf.add_link("producer", "consumer")
            res = wf.run(timeout=90.0)
            assert res.returns["consumer"][0] == list(range(5))
            return _report_fingerprint(res)

        prints = [one() for _ in range(3)]
        assert prints[0] == prints[1] == prints[2]
