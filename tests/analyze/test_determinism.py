"""Same-seed attribution determinism (the schedule-analysis payoff).

The wait-state attribution used to wobble across same-seed runs: serve
loops raced on real-thread match order, accounts summed in dict order,
and span ties broke on ids. The serve-loop global-minimum selection,
the wildcard safety gate and per-sender message ids make the whole
pipeline a pure function of the seed; these tests pin that, with the
thread switch interval cranked down so the OS interleaves rank threads
as aggressively as it can.
"""

import json
import sys

import pytest

from repro.analyze import analyze_obs
from repro.bench.drivers import run_lowfive_file, run_lowfive_memory
from repro.synth import SyntheticWorkload


@pytest.fixture(autouse=True)
def aggressive_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


def small_wl():
    return SyntheticWorkload(grid_points_per_proc=2000,
                             particles_per_proc=1000)


def fingerprint(res):
    """Everything attribution-shaped, as one canonical JSON blob."""
    return json.dumps(
        {"vtime": res.vtime, "messages": res.messages,
         "bytes": res.bytes_sent, "attribution": res.attribution},
        sort_keys=True)


class TestSameSeedSameLedgers:
    def test_memory_mode_attribution_is_byte_identical(self):
        runs = [run_lowfive_memory(2, 2, small_wl()) for _ in range(3)]
        prints = [fingerprint(r) for r in runs]
        assert prints[0] == prints[1] == prints[2]

    def test_file_mode_attribution_is_byte_identical(self):
        runs = [run_lowfive_file(2, 2, small_wl()) for _ in range(2)]
        assert fingerprint(runs[0]) == fingerprint(runs[1])


class TestAnalyzerDeterminism:
    def test_findings_and_trace_identical_across_runs(self):
        """Message ids are per-sender streams, so even the raw causal
        trace (posts, matches, candidate sets) replays identically."""
        from repro.bench.drivers import _lowfive_wf, _check
        from repro.perfmodel.transports import THETA_KNL
        from repro.pfs import PFSStore

        def one():
            wf = _lowfive_wf(2, 2, small_wl(), THETA_KNL, "memory",
                             PFSStore())
            res = wf.run(model=THETA_KNL.net, timeout=120.0)
            assert _check(res.returns["consumer"])
            causal = res.obs.causal
            return {
                "posts": [(p.msg_id, p.src, p.dst, p.tag, p.t_post,
                           p.t_arrival) for p in causal.posts()],
                "matches": [(m.dst, m.msg_id, m.t_match, m.candidates)
                            for m in causal.matches()],
                "findings": [f.to_dict() for f in analyze_obs(res.obs)],
            }

        a, b = one(), one()
        assert a == b
        assert a["findings"] == []
