"""Corpus + clean-tree pins for the PRO00x static protocol checker.

Every known-bad exemplar under ``proto_corpus/`` carries a
``# PROTO: PRO00X`` marker comment on the line where the checker must
report -- the tests below assert the findings match the markers
*exactly* (rule and line, nothing more, nothing less), and that the
entire real tree stays at zero findings.
"""

import glob
import os

from repro.analyze.proto import (
    DEFAULT_ALLOWLIST,
    PROTO_RULES,
    check_paths,
    check_source,
)

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
CORPUS = os.path.join(ROOT, "tests", "analyze", "proto_corpus")


def _markers(source: str) -> list[tuple[str, int]]:
    out = []
    for i, line in enumerate(source.splitlines(), start=1):
        for code in PROTO_RULES:
            if f"# PROTO: {code}" in line:
                out.append((code, i))
    return out


class TestCorpus:
    def test_every_bad_exemplar_reports_exactly_its_marker(self):
        """Each bad file yields exactly one finding, on the marked
        line, with the marked rule, and carries a path witness."""
        bad = sorted(glob.glob(os.path.join(CORPUS, "bad_*.py")))
        assert len(bad) == 5, "one exemplar per PRO rule"
        for path in bad:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            expected = _markers(source)
            assert len(expected) == 1, f"{path}: want exactly 1 marker"
            findings = check_source(source, path)
            got = [(f.rule, f.line) for f in findings]
            assert got == expected, (
                f"{path}: expected {expected}, got "
                + "\n".join(f.render() for f in findings))
            assert findings[0].witness, f"{path}: missing witness"

    def test_corpus_covers_every_rule(self):
        seen = set()
        for path in glob.glob(os.path.join(CORPUS, "bad_*.py")):
            with open(path, encoding="utf-8") as fh:
                seen.update(code for code, _l in _markers(fh.read()))
        assert seen == set(PROTO_RULES)

    def test_ok_exemplars_are_clean(self):
        ok = sorted(glob.glob(os.path.join(CORPUS, "ok_*.py")))
        assert ok, "clean exemplars exist"
        for path in ok:
            with open(path, encoding="utf-8") as fh:
                findings = check_source(fh.read(), path)
            assert findings == [], "\n".join(
                f.render() for f in findings)

    def test_directory_walk_skips_corpus_but_explicit_file_hits(self):
        """The corpus is excluded from tree walks (it exists to be
        bad) while staying reachable as an explicit target."""
        assert check_paths([CORPUS]) == []
        direct = check_paths([os.path.join(CORPUS, "bad_pro003.py")])
        assert [f.rule for f in direct] == ["PRO003"]


class TestSuppression:
    BAD = ("def body(ctx):\n"
           "    ctx.comm.recv(source=0, tag='seven')\n")

    def test_noqa_with_code_suppresses(self):
        src = self.BAD.replace("')\n", "')  # noqa: PRO005\n")
        assert check_source(src, "x.py") == []

    def test_bare_noqa_suppresses(self):
        src = self.BAD.replace("')\n", "')  # noqa\n")
        assert check_source(src, "x.py") == []

    def test_wrong_code_does_not_suppress(self):
        src = self.BAD.replace("')\n", "')  # noqa: PRO001\n")
        assert [f.rule for f in check_source(src, "x.py")] == ["PRO005"]

    def test_skip_set_filters_rules(self):
        assert check_source(self.BAD, "x.py",
                            skip=frozenset({"PRO005"})) == []

    def test_default_allowlist_is_empty(self):
        """The tree needs no standing exemptions -- keep it that way."""
        assert DEFAULT_ALLOWLIST == {}


class TestRepoIsClean:
    def test_whole_tree_has_zero_proto_findings(self):
        """The acceptance gate: src, examples, benchmarks AND tests
        are protocol-clean (the corpus is walk-excluded by design)."""
        paths = [os.path.join(ROOT, d)
                 for d in ("src", "examples", "benchmarks", "tests")]
        findings = check_paths(paths)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_rule_table_is_complete(self):
        assert set(PROTO_RULES) == {"PRO001", "PRO002", "PRO003",
                                    "PRO004", "PRO005"}


class TestCLI:
    def test_strict_exit_codes_and_json(self, capsys):
        import json as jsonmod

        from repro.tools.proto import add_parser

        import argparse
        ap = argparse.ArgumentParser()
        sub = ap.add_subparsers(dest="command")
        add_parser(sub)
        bad = os.path.join(CORPUS, "bad_pro001.py")

        args = ap.parse_args(["proto", bad, "--strict"])
        assert args.run(args) == 1
        args = ap.parse_args(["proto", bad])
        assert args.run(args) == 0  # advisory without --strict
        capsys.readouterr()

        args = ap.parse_args(["proto", bad, "--strict", "--json"])
        assert args.run(args) == 1
        doc = jsonmod.loads(capsys.readouterr().out)
        assert [d["rule"] for d in doc] == ["PRO001"]
        assert doc[0]["witness"]

    def test_module_target_resolves(self, capsys):
        import argparse

        from repro.tools.proto import add_parser

        ap = argparse.ArgumentParser()
        sub = ap.add_subparsers(dest="command")
        add_parser(sub)
        args = ap.parse_args(["proto", "-m", "repro.analyze.proto",
                              "--strict"])
        assert args.run(args) == 0
