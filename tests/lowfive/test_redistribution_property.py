"""End-to-end property test: LowFive redistribution over random shapes,
task sizes and consumer selections always delivers exact data.

This is the repository's strongest correctness statement: for arbitrary
n producers, m consumers, dataset shapes, and consumer-side hyperslab
reads (including strided ones), index-serve-query reconstructs the
position-encoded values exactly.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.h5.selection import HyperslabSelection
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.synth import grid_values, producer_grid_selection, validate_grid
from repro.workflow import Workflow


def run_case(nprod, ncons, shape, consumer_sels):
    """Producers write row slabs; consumer rank r reads consumer_sels[r]."""
    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
            vol.set_memory("p.h5")
            if role == "producer":
                vol.serve_on_close("p.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("p.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("p.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("d", shape=shape, dtype=h5.UINT64)
        sel = producer_grid_selection(shape, ctx.rank, ctx.size)
        d.write(grid_values(sel, shape), file_select=sel)
        f.close()

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("p.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_sels[ctx.rank]
        vals = f["d"].read(sel, reshape=False)
        f.close()
        return validate_grid(sel, shape, vals)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(timeout=90.0)
    return res.returns["consumer"]


@st.composite
def random_case(draw):
    nprod = draw(st.integers(1, 5))
    ncons = draw(st.integers(1, 3))
    rows = draw(st.integers(nprod, 3 * nprod))
    cols = draw(st.integers(1, 6))
    shape = (rows, cols)
    sels = []
    for _ in range(ncons):
        kind = draw(st.sampled_from(["box", "strided", "row"]))
        if kind == "box":
            r0 = draw(st.integers(0, rows - 1))
            r1 = draw(st.integers(r0 + 1, rows))
            c0 = draw(st.integers(0, cols - 1))
            c1 = draw(st.integers(c0 + 1, cols))
            sels.append(HyperslabSelection(
                shape, (r0, c0), (r1 - r0, c1 - c0)))
        elif kind == "strided":
            stride = draw(st.integers(2, 3))
            count = max(1, rows // stride)
            start = draw(st.integers(0, rows - (count - 1) * stride - 1))
            sels.append(HyperslabSelection(
                shape, (start, 0), (count, cols), stride=(stride, 1)))
        else:
            r = draw(st.integers(0, rows - 1))
            sels.append(HyperslabSelection(shape, (r, 0), (1, cols)))
    return nprod, ncons, shape, sels


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_case())
def test_prop_lowfive_redistribution_exact(case):
    nprod, ncons, shape, sels = case
    assert all(run_case(nprod, ncons, shape, sels))
