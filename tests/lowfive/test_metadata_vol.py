"""MetadataVOL tests (single task, no distribution)."""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import LowFiveConfig, MetadataVOL
from repro.pfs import PFSStore


def make_vol(memory="*", passthru=None, zero_copy=None, store=None):
    vol = MetadataVOL(under=NativeVOL(store or PFSStore()))
    if memory:
        vol.set_memory(memory)
    if passthru:
        vol.set_passthru(passthru)
    if zero_copy:
        vol.set_zero_copy(*zero_copy)
    return vol


class TestMemoryMode:
    def test_write_read_within_task(self):
        vol = make_vol()
        with h5.File("mem.h5", "w", vol=vol) as f:
            f.create_dataset("g/d", data=np.arange(12).reshape(3, 4))
        # Reopen from memory: nothing was written to storage.
        assert vol.under.store.listdir() == []
        with h5.File("mem.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(
                f["g/d"].read(), np.arange(12).reshape(3, 4)
            )

    def test_tree_survives_close(self):
        vol = make_vol()
        h5.File("mem.h5", "w", vol=vol).close()
        assert vol.get_tree(None, "mem.h5") is not None
        vol.drop_file(None, "mem.h5")
        assert vol.get_tree(None, "mem.h5") is None

    def test_attributes_in_memory(self):
        vol = make_vol()
        with h5.File("mem.h5", "w", vol=vol) as f:
            f.attrs["step"] = 7
            g = f.create_group("g")
            g.attrs["x"] = 1.5
        with h5.File("mem.h5", "r", vol=vol) as f:
            assert f.attrs["step"] == 7
            assert f["g"].attrs["x"] == 1.5
            assert f["g"].attrs.keys() == ["x"]

    def test_links_and_object_open(self):
        vol = make_vol()
        with h5.File("mem.h5", "w", vol=vol) as f:
            f.create_dataset("a/d", data=[1])
            f.create_group("b")
            assert sorted(f.keys()) == ["a", "b"]
            assert "a/d" in f
            assert isinstance(f["a/d"], h5.Dataset)
            assert isinstance(f["b"], h5.Group)

    def test_hyperslab_pieces(self):
        vol = make_vol()
        with h5.File("mem.h5", "w", vol=vol) as f:
            d = f.create_dataset("d", shape=(4, 4), dtype="i8")
            d.write(np.ones(8), file_select=h5.hyperslab((0, 0), (2, 4)))
            d.write(np.full(8, 2), file_select=h5.hyperslab((2, 0), (2, 4)))
            out = d.read()
            assert (out[:2] == 1).all() and (out[2:] == 2).all()


class TestZeroCopy:
    def test_deep_copy_by_default(self):
        vol = make_vol()
        buf = np.arange(4)
        with h5.File("mem.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=buf)
            buf[:] = 0
        with h5.File("mem.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(f["d"].read(), [0, 1, 2, 3])

    def test_zero_copy_references_user_buffer(self):
        vol = make_vol(zero_copy=("mem.h5", "/d"))
        buf = np.arange(4)
        with h5.File("mem.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=buf)
            buf[:] = 9
        with h5.File("mem.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(f["d"].read(), [9, 9, 9, 9])

    def test_zero_copy_pattern_granularity(self):
        vol = make_vol(zero_copy=("mem.h5", "/shallow"))
        a = np.arange(3)
        b = np.arange(3)
        with h5.File("mem.h5", "w", vol=vol) as f:
            f.create_dataset("shallow", data=a)
            f.create_dataset("deep", data=b)
            a[:] = 7
            b[:] = 7
        with h5.File("mem.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(f["shallow"].read(), [7, 7, 7])
            np.testing.assert_array_equal(f["deep"].read(), [0, 1, 2])


class TestPassthrough:
    def test_memory_plus_passthru_writes_file_too(self):
        store = PFSStore()
        vol = make_vol(memory="*.h5", passthru="*.h5", store=store)
        with h5.File("both.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=np.arange(5))
        assert store.listdir() == ["both.h5"]
        # Readable via a completely separate native VOL.
        with h5.File("both.h5", "r", vol=NativeVOL(store)) as f:
            np.testing.assert_array_equal(f["d"].read(), np.arange(5))

    def test_non_matching_file_passes_through(self):
        store = PFSStore()
        vol = make_vol(memory="data_*.h5", store=store)
        with h5.File("checkpoint.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[3])
        assert vol.get_tree(None, "checkpoint.h5") is None
        assert store.listdir() == ["checkpoint.h5"]
        with h5.File("checkpoint.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(f["d"].read(), [3])

    def test_passthru_only_behaves_like_native(self):
        store = PFSStore()
        vol = MetadataVOL(under=NativeVOL(store))
        vol.set_passthru("*")
        with h5.File("f.h5", "w", vol=vol) as f:
            f.create_dataset("d", data=[1, 2])
            f.attrs["a"] = 1
        with h5.File("f.h5", "r", vol=vol) as f:
            np.testing.assert_array_equal(f["d"].read(), [1, 2])
            assert f.attrs["a"] == 1


class TestConfig:
    def test_pattern_matching(self):
        cfg = LowFiveConfig()
        cfg.set_memory("outfile*.h5", "/group1/*")
        assert cfg.is_memory("outfile1.h5", "/group1/grid")
        assert not cfg.is_memory("other.h5", "/group1/grid")
        assert not cfg.is_memory("outfile1.h5", "/group2/x")
        assert cfg.file_intercepted("outfile9.h5")
        assert not cfg.file_intercepted("nope.h5")

    def test_passthru_and_zero_copy_rules(self):
        cfg = LowFiveConfig()
        cfg.set_passthru("*", "/checkpoint/*")
        cfg.set_zero_copy("*.h5", "/big/*")
        assert cfg.is_passthru("x.h5", "/checkpoint/c")
        assert cfg.file_passthru("anything")
        assert cfg.is_zero_copy("a.h5", "/big/d")
        assert not cfg.is_zero_copy("a.h5", "/small/d")

    def test_defaults_intercept_nothing(self):
        cfg = LowFiveConfig()
        assert not cfg.file_intercepted("a.h5")
        assert not cfg.file_passthru("a.h5")
