"""RPC-over-MPI abstraction tests (the paper's custom RPC layer)."""

import pytest

from repro.lowfive.rpc import (
    Defer,
    RPCClient,
    RPCError,
    RPCServer,
    RPCTimeout,
)
from repro.simmpi import Engine, Intercomm


def run_client_server(client_main, server_setup, nclients=2, nservers=1):
    """Launch clients + servers over an intercomm."""
    eng = Engine(nclients + nservers)
    c_view, s_view = Intercomm.create(
        eng, list(range(nclients)),
        list(range(nclients, nclients + nservers)),
    )

    def main(world):
        if world.rank < nclients:
            client = RPCClient(c_view)
            result = client_main(client, world.rank)
            client.notify_all("__done__")
            return result
        server = RPCServer()
        server_setup(server)
        server.attach(s_view)
        server.serve()
        return "served"

    return eng.run(main)


def test_basic_call_roundtrip():
    def setup(server):
        server.register("add", lambda source, a, b: a + b)

    def client(c, rank):
        return c.call(0, "add", rank, 10)

    res = run_client_server(client, setup)
    assert res.returns[:2] == [10, 11]


def test_handler_sees_source_rank():
    def setup(server):
        server.register("who", lambda source: source)

    def client(c, rank):
        return c.call(0, "who")

    res = run_client_server(client, setup)
    assert res.returns[:2] == [0, 1]


def test_unknown_function_raises_client_side():
    def setup(server):
        pass

    def client(c, rank):
        with pytest.raises(RPCError, match="unknown function"):
            c.call(0, "nope")
        return True

    res = run_client_server(client, setup, nclients=1)
    assert res.returns[0] is True


def test_handler_exception_forwarded():
    def setup(server):
        def boom(source):
            raise ValueError("bad input")

        server.register("boom", boom)

    def client(c, rank):
        with pytest.raises(RPCError, match="ValueError: bad input"):
            c.call(0, "boom")
        return True

    res = run_client_server(client, setup, nclients=1)
    assert res.returns[0] is True


def test_notify_handlers_fire_without_reply():
    seen = []

    def setup(server):
        server.on_notify("event", lambda source, x: seen.append((source, x)))
        server.register("count", lambda source: len(seen))

    def client(c, rank):
        c.notify(0, "event", rank * 100)
        # Requests and notifications ride different lanes, so poll until
        # the notification has been consumed.
        for _ in range(100):
            if c.call(0, "count") == 1:
                return 1
        return 0

    res = run_client_server(client, setup, nclients=1)
    assert res.returns[0] == 1
    assert seen == [(0, 0)]


def test_defer_replays_after_new_traffic():
    state = {"ready": False}

    def setup(server):
        def get(source):
            if not state["ready"]:
                raise Defer()
            return "data"

        def arm(source):
            state["ready"] = True

        server.register("get", get)
        server.on_notify("arm", arm)

    def client(c, rank):
        if rank == 0:
            return c.call(0, "get")  # deferred until rank 1 arms
        import time

        time.sleep(0.05)  # noqa: ANL001 - real stall exercises the watchdog
        c.notify(0, "arm")
        return "armed"

    res = run_client_server(client, setup, nclients=2)
    assert res.returns[0] == "data"


def test_server_multiplexes_two_intercomms():
    eng = Engine(3)
    a_view, sa = Intercomm.create(eng, [0], [2])
    b_view, sb = Intercomm.create(eng, [1], [2])

    def main(world):
        if world.rank == 2:
            server = RPCServer()
            server.register("echo", lambda source, x: x)
            server.attach(sa)
            server.attach(sb)
            server.serve()
            return "done"
        inter = a_view if world.rank == 0 else b_view
        client = RPCClient(inter)
        out = client.call(0, "echo", f"from-{world.rank}")
        client.notify_all("__done__")
        return out

    res = eng.run(main)
    assert res.returns[0] == "from-0"
    assert res.returns[1] == "from-1"


def test_serve_timeout_raises():
    # The serve timeout is measured on the virtual clock: the client
    # keeps computing (virtual progress) but never sends done, so the
    # server starves out after 0.3 *simulated* seconds.
    eng = Engine(2)
    c_view, s_view = Intercomm.create(eng, [0], [1])

    def main(world):
        if world.rank == 1:
            server = RPCServer()
            server.attach(s_view)
            with pytest.raises(RPCTimeout, match="starved"):
                server.serve(timeout=0.3)  # client never sends done
            return "timed-out"
        import time

        # Advance virtual time gradually over real time so the serve
        # loop observes progress regardless of startup interleaving.
        for _ in range(20):
            world.compute(0.05)
            time.sleep(0.02)  # noqa: ANL001 - real stall exercises the watchdog
        return "silent"

    res = eng.run(main)
    assert res.returns[1] == "timed-out"


def test_serve_without_intercomms_returns():
    server = RPCServer()
    server.serve()  # no-op


def test_done_counting_resets_between_epochs():
    def setup(server):
        server.register("ping", lambda source: "pong")

    eng = Engine(2)
    c_view, s_view = Intercomm.create(eng, [0], [1])

    def main(world):
        if world.rank == 1:
            server = RPCServer()
            server.register("ping", lambda source: "pong")
            server.attach(s_view)
            server.serve()  # epoch 1
            server.serve()  # epoch 2
            return "two-epochs"
        client = RPCClient(c_view)
        assert client.call(0, "ping") == "pong"
        client.notify_all("__done__")
        assert client.call(0, "ping") == "pong"
        client.notify_all("__done__")
        return "ok"

    res = eng.run(main)
    assert res.returns == ["ok", "two-epochs"]
