"""DistMetadataVOL end-to-end tests: index-serve-query over task graphs.

These exercise the paper's headline features: in situ transport with
unchanged user I/O code, n-to-m redistribution with producer/consumer
decomposition mismatch, fan-in/fan-out, and file mode.
"""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.synth import (
    consumer_grid_selection,
    consumer_particle_selection,
    grid_values,
    particle_values,
    producer_grid_selection,
    producer_particle_selection,
    validate_grid,
    validate_particles,
)
from repro.workflow import Workflow


def make_dist_vol(ctx, role_links, store=None, mode="memory"):
    """One DistMetadataVOL per task, shared by its ranks.

    ``role_links``: list of (pattern, peer task name, role).
    """
    def factory():
        vol = DistMetadataVOL(
            comm=ctx.comm, under=NativeVOL(store or PFSStore())
        )
        for pattern, peer, role in role_links:
            if mode in ("memory", "both"):
                vol.set_memory(pattern)
            if mode in ("file", "both"):
                vol.set_passthru(pattern)
            if role == "producer":
                vol.serve_on_close(pattern, ctx.intercomm(peer))
            else:
                vol.set_consumer(pattern, ctx.intercomm(peer))
        return vol

    return ctx.singleton("vol", factory)


def run_producer_consumer(nprod, ncons, *, grid_shape=(12, 8, 4),
                          n_particles=200, mode="memory", store=None,
                          timeout=60.0):
    """The paper's synthetic benchmark at test scale, with validation."""
    results = {}

    def producer(ctx):
        vol = make_dist_vol(ctx, [("out.h5", "consumer", "producer")],
                            store=store, mode=mode)
        f = h5.File("out.h5", "w", comm=ctx.comm, vol=vol)
        g1 = f.create_group("group1")
        grid = g1.create_dataset("grid", shape=grid_shape, dtype=h5.UINT64)
        sel = producer_grid_selection(grid_shape, ctx.rank, ctx.size)
        grid.write(grid_values(sel, grid_shape), file_select=sel)
        g2 = f.create_group("group2")
        parts = g2.create_dataset("particles", shape=(n_particles, 3),
                                  dtype=h5.FLOAT32)
        psel = producer_particle_selection(n_particles, ctx.rank, ctx.size)
        parts.write(particle_values(psel), file_select=psel)
        f.attrs["step"] = 1
        f.close()
        return "produced"

    def consumer(ctx):
        vol = make_dist_vol(ctx, [("out.h5", "producer", "consumer")],
                            store=store, mode=mode)
        f = h5.File("out.h5", "r", comm=ctx.comm, vol=vol)
        grid = f["group1/grid"]
        assert grid.shape == tuple(grid_shape)
        assert grid.dtype == h5.UINT64
        sel = consumer_grid_selection(grid_shape, ctx.rank, ctx.size)
        gv = grid.read(sel, reshape=False)
        ok_grid = validate_grid(sel, grid_shape, gv)
        parts = f["group2/particles"]
        psel = consumer_particle_selection(n_particles, ctx.rank, ctx.size)
        pv = parts.read(psel, reshape=False)
        ok_parts = validate_particles(psel, pv)
        step = f.attrs["step"]
        f.close()
        return (ok_grid, ok_parts, step)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(timeout=timeout)
    results["res"] = res
    for ok_grid, ok_parts, step in res.returns["consumer"]:
        assert ok_grid, "grid redistribution corrupted data"
        assert ok_parts, "particle redistribution corrupted data"
        assert step == 1
    return res


class TestMemoryMode:
    def test_3_to_1(self):
        run_producer_consumer(3, 1)

    def test_6_to_4_mismatched_decompositions(self):
        # Paper Fig. 3: 6 producers (row slabs) to 4 consumers (blocks).
        run_producer_consumer(6, 4)

    def test_2_to_5_more_consumers_than_producers(self):
        run_producer_consumer(2, 5)

    def test_1_to_1(self):
        run_producer_consumer(1, 1)

    def test_1_to_3(self):
        run_producer_consumer(1, 3)

    def test_5_to_2_odd_counts(self):
        run_producer_consumer(5, 2, grid_shape=(10, 7, 3), n_particles=101)

    def test_no_storage_traffic_in_memory_mode(self):
        store = PFSStore()
        run_producer_consumer(3, 1, store=store)
        assert store.listdir() == []


class TestFileMode:
    def test_file_mode_transports_via_storage(self):
        store = PFSStore()
        res = run_producer_consumer(3, 1, mode="file", store=store,
                                    timeout=120.0)
        assert "out.h5" in store.listdir()
        # File mode pays Lustre costs: clearly slower than memory mode
        # even at this tiny test size (the orders-of-magnitude gap at
        # the paper's data sizes is asserted in tests/perfmodel).
        res_mem = run_producer_consumer(3, 1, mode="memory")
        assert res.vtime > 4 * res_mem.vtime

    def test_both_mode_keeps_memory_and_file(self):
        store = PFSStore()
        run_producer_consumer(2, 2, mode="both", store=store)
        assert "out.h5" in store.listdir()


class TestFanInFanOut:
    def test_fan_out_one_producer_two_consumers(self):
        grid_shape = (8, 6)

        def producer(ctx):
            vol = ctx.singleton("vol", lambda: self._vol(ctx, [
                ("out.h5", "c1", "producer"), ("out.h5", "c2", "producer"),
            ]))
            f = h5.File("out.h5", "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("grid", shape=grid_shape, dtype=h5.UINT64)
            sel = producer_grid_selection(grid_shape, ctx.rank, ctx.size)
            d.write(grid_values(sel, grid_shape), file_select=sel)
            f.close()

        def consumer(ctx):
            peer = "producer"
            vol = ctx.singleton("vol", lambda: self._vol(ctx, [
                ("out.h5", peer, "consumer"),
            ]))
            f = h5.File("out.h5", "r", comm=ctx.comm, vol=vol)
            sel = consumer_grid_selection(grid_shape, ctx.rank, ctx.size)
            vals = f["grid"].read(sel, reshape=False)
            f.close()
            return validate_grid(sel, grid_shape, vals)

        wf = Workflow()
        wf.add_task("producer", 2, producer)
        wf.add_task("c1", 1, consumer)
        wf.add_task("c2", 2, consumer)
        wf.add_link("producer", "c1")
        wf.add_link("producer", "c2")
        res = wf.run()
        assert all(res.returns["c1"]) and all(res.returns["c2"])

    def test_fan_in_two_producers_one_consumer(self):
        """Two producer tasks write different files; one consumer reads
        both (fan-in in the task graph)."""
        shape = (6, 4)

        def make_producer(fname):
            def producer(ctx):
                vol = ctx.singleton("vol", lambda: self._vol(ctx, [
                    (fname, "consumer", "producer"),
                ]))
                f = h5.File(fname, "w", comm=ctx.comm, vol=vol)
                d = f.create_dataset("d", shape=shape, dtype=h5.UINT64)
                sel = producer_grid_selection(shape, ctx.rank, ctx.size)
                d.write(grid_values(sel, shape), file_select=sel)
                f.close()
            return producer

        def consumer(ctx):
            vol = ctx.singleton("vol", lambda: self._vol(ctx, [
                ("a.h5", "pa", "consumer"), ("b.h5", "pb", "consumer"),
            ]))
            oks = []
            for fname in ("a.h5", "b.h5"):
                f = h5.File(fname, "r", comm=ctx.comm, vol=vol)
                sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
                vals = f["d"].read(sel, reshape=False)
                oks.append(validate_grid(sel, shape, vals))
                f.close()
            return all(oks)

        wf = Workflow()
        wf.add_task("pa", 2, make_producer("a.h5"))
        wf.add_task("pb", 3, make_producer("b.h5"))
        wf.add_task("consumer", 2, consumer)
        wf.add_link("pa", "consumer")
        wf.add_link("pb", "consumer")
        res = wf.run()
        assert all(res.returns["consumer"])

    @staticmethod
    def _vol(ctx, role_links):
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
        for pattern, peer, role in role_links:
            vol.set_memory(pattern)
            if role == "producer":
                vol.serve_on_close(pattern, ctx.intercomm(peer))
            else:
                vol.set_consumer(pattern, ctx.intercomm(peer))
        return vol


class TestMultiTimestep:
    def test_two_sequential_files(self):
        """step1.h5 then step2.h5 through the same VOLs (two epochs)."""
        shape = (6, 6)

        def producer(ctx):
            vol = ctx.singleton("vol", lambda: TestFanInFanOut._vol(ctx, [
                ("step*.h5", "consumer", "producer"),
            ]))
            for step in (1, 2):
                fname = f"step{step}.h5"
                f = h5.File(fname, "w", comm=ctx.comm, vol=vol)
                d = f.create_dataset("d", shape=shape, dtype=h5.UINT64)
                sel = producer_grid_selection(shape, ctx.rank, ctx.size)
                d.write(grid_values(sel, shape) + step, file_select=sel)
                f.close()

        def consumer(ctx):
            vol = ctx.singleton("vol", lambda: TestFanInFanOut._vol(ctx, [
                ("step*.h5", "producer", "consumer"),
            ]))
            oks = []
            for step in (1, 2):
                f = h5.File(f"step{step}.h5", "r", comm=ctx.comm, vol=vol)
                sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
                vals = np.asarray(f["d"].read(sel, reshape=False))
                oks.append(
                    np.array_equal(vals, grid_values(sel, shape) + step)
                )
                f.close()
            return all(oks)

        wf = Workflow()
        wf.add_task("producer", 2, producer)
        wf.add_task("consumer", 2, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run()
        assert all(res.returns["consumer"])


class TestSelectionsBeyondBoxes:
    def test_strided_consumer_read(self):
        """Full HDF5 dataspace generality: consumer reads a strided
        hyperslab crossing producer boundaries."""
        shape = (8, 8)

        def producer(ctx):
            vol = ctx.singleton("vol", lambda: TestFanInFanOut._vol(ctx, [
                ("o.h5", "consumer", "producer"),
            ]))
            f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("d", shape=shape, dtype=h5.UINT64)
            sel = producer_grid_selection(shape, ctx.rank, ctx.size)
            d.write(grid_values(sel, shape), file_select=sel)
            f.close()

        def consumer(ctx):
            vol = ctx.singleton("vol", lambda: TestFanInFanOut._vol(ctx, [
                ("o.h5", "producer", "consumer"),
            ]))
            f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
            sel = h5.HyperslabSelection(shape, (0, ctx.rank), (4, 4),
                                        stride=(2, 2))
            vals = f["d"].read(sel, reshape=False)
            f.close()
            return validate_grid(sel, shape, vals)

        wf = Workflow()
        wf.add_task("producer", 4, producer)
        wf.add_task("consumer", 2, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run()
        assert all(res.returns["consumer"])

    def test_point_selection_read(self):
        shape = (10,)

        def producer(ctx):
            vol = ctx.singleton("vol", lambda: TestFanInFanOut._vol(ctx, [
                ("o.h5", "consumer", "producer"),
            ]))
            f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("d", shape=shape, dtype=h5.UINT64)
            sel = producer_grid_selection(shape, ctx.rank, ctx.size)
            d.write(grid_values(sel, shape), file_select=sel)
            f.close()

        def consumer(ctx):
            vol = ctx.singleton("vol", lambda: TestFanInFanOut._vol(ctx, [
                ("o.h5", "producer", "consumer"),
            ]))
            f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
            sel = h5.PointSelection(shape, [(9,), (0,), (5,)])
            vals = np.asarray(f["d"].read(sel, reshape=False))
            f.close()
            return np.array_equal(vals, [9, 0, 5])

        wf = Workflow()
        wf.add_task("producer", 2, producer)
        wf.add_task("consumer", 1, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run()
        assert all(res.returns["consumer"])
