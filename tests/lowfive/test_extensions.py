"""Extension-feature tests: phase profiling and producer push.

Both implement directions from the paper's future work (Sec. V-C):
finer-grained communication profiling, and reducing synchronization by
scheduling/pushing communication.
"""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.lowfive.profile import PhaseStats, Profiler
from repro.pfs import PFSStore
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow

SHAPE = (12, 8)


def build_workflow(nprod, ncons, push=False, collect=None,
                   consumer_body=None):
    """Producer/consumer pair; returns the WorkflowResult."""
    collect = collect if collect is not None else {}

    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
            vol.set_memory("o.h5")
            if push:
                vol.enable_push("o.h5")
            if role == "producer":
                vol.serve_on_close("o.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("o.h5", ctx.intercomm(peer))
            collect.setdefault(role, vol)
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("d", shape=SHAPE, dtype=h5.UINT64)
        sel = producer_grid_selection(SHAPE, ctx.rank, ctx.size)
        d.write(grid_values(sel, SHAPE), file_select=sel)
        f.close()
        return vol.phase_stats(ctx.comm).seconds

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
        if consumer_body is not None:
            out = consumer_body(ctx, f)
        else:
            sel = consumer_grid_selection(SHAPE, ctx.rank, ctx.size)
            vals = f["d"].read(sel, reshape=False)
            out = validate_grid(sel, SHAPE, vals)
        f.close()
        return out, dict(vol.phase_stats(ctx.comm).seconds)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf.run()


class TestProfiling:
    def test_producer_phases_recorded(self):
        res = build_workflow(3, 2)
        for phases in res.returns["producer"]:
            assert "index" in phases and "serve" in phases
            assert phases["index"] >= 0
            assert phases["serve"] >= 0

    def test_consumer_phases_recorded(self):
        res = build_workflow(3, 2)
        for ok, phases in res.returns["consumer"]:
            assert ok
            assert "metadata_open" in phases
            assert "query" in phases

    def test_phase_stats_breakdown_sums_to_one(self):
        st = PhaseStats()
        st.add("a", 3.0)
        st.add("b", 1.0)
        bd = st.breakdown()
        assert bd["a"] == pytest.approx(0.75)
        assert sum(bd.values()) == pytest.approx(1.0)
        assert st.total() == 4.0
        assert st.counts == {"a": 1, "b": 1}

    def test_phase_stats_merge(self):
        a = PhaseStats({"x": 1.0}, {"x": 1})
        b = PhaseStats({"x": 2.0, "y": 5.0}, {"x": 3, "y": 1})
        m = a.merge(b)
        assert m.seconds == {"x": 3.0, "y": 5.0}
        assert m.counts == {"x": 4, "y": 1}
        # merge does not mutate the inputs
        assert a.seconds == {"x": 1.0}

    def test_empty_breakdown(self):
        assert PhaseStats().breakdown() == {}
        assert PhaseStats().total() == 0.0

    def test_profiler_without_comm_is_noop(self):
        prof = Profiler()
        with prof.phase(0, "x", None):
            pass
        assert prof.stats_for(0).seconds == {}

    def test_profiler_all_stats(self):
        prof = Profiler()
        prof.stats_for(0).add("a", 1.0)
        prof.stats_for(1).add("b", 2.0)
        allst = prof.all_stats()
        assert set(allst) == {0, 1}


class TestPush:
    def test_push_delivers_correct_data(self):
        res = build_workflow(3, 2, push=True)
        for ok, _phases in res.returns["consumer"]:
            assert ok

    def test_push_eliminates_query_phase(self):
        res = build_workflow(3, 2, push=True)
        for _ok, phases in res.returns["consumer"]:
            assert "query" not in phases  # served from pushed data
        for phases in res.returns["producer"]:
            assert "push" in phases

    def test_push_mismatched_selection_falls_back_to_query(self):
        """A read outside the pushed block still works (via query)."""
        def body(ctx, f):
            # Deliberately read a selection that is NOT this rank's
            # regular block: the whole first row.
            sel = h5.HyperslabSelection(SHAPE, (0, 0), (1, SHAPE[1]))
            vals = f["d"].read(sel, reshape=False)
            return validate_grid(sel, SHAPE, vals)

        res = build_workflow(3, 2, push=True, consumer_body=body)
        fellback = []
        for ok, phases in res.returns["consumer"]:
            assert ok
            fellback.append("query" in phases)
        # Rank 0's pushed block contains row 0 (local hit); rank 1's
        # does not, so it must have queried.
        assert fellback == [False, True]

    def test_push_faster_than_query_mode(self):
        """The point of the extension: fewer round trips, less time."""
        t_query = build_workflow(4, 2, push=False).vtime
        t_push = build_workflow(4, 2, push=True).vtime
        assert t_push < t_query

    def test_push_with_n_to_m_mismatch(self):
        res = build_workflow(5, 3, push=True)
        for ok, _ in res.returns["consumer"]:
            assert ok
