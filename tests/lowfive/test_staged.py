"""In-transit (staged) LowFive mode tests.

Correctness of the staged redistribution, and the decoupling property
the paper attributes to staging: the producer finishes without waiting
for a slow consumer.
"""

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.lowfive.vol_staged import StagedMetadataVOL, staging_main
from repro.pfs import PFSStore
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow

SHAPE = (12, 8)


def build(nprod, ncons, nstage, consumer_delay=0.0, files=("o.h5",)):
    """Producer -> staging -> consumer workflow; returns the result."""
    def make_vol(ctx, role):
        def factory():
            vol = StagedMetadataVOL(comm=ctx.comm,
                                    under=NativeVOL(PFSStore()))
            vol.set_memory("*.h5")
            if role == "producer":
                vol.stage_on_close("*.h5", ctx.intercomm("staging"))
            else:
                vol.set_staged_consumer("*.h5", ctx.intercomm("staging"))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer")
        inter = ctx.intercomm("staging")
        for i, fname in enumerate(files):
            f = h5.File(fname, "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("d", shape=SHAPE, dtype=h5.UINT64)
            sel = producer_grid_selection(SHAPE, ctx.rank, ctx.size)
            d.write(grid_values(sel, SHAPE) + i, file_select=sel)
            f.close()  # returns immediately: staged, not served
        t_done = ctx.comm.vtime
        StagedMetadataVOL.finalize_staging(inter)
        return t_done

    def consumer(ctx):
        vol = make_vol(ctx, "consumer")
        inter = ctx.intercomm("staging")
        if consumer_delay:
            ctx.comm.compute(consumer_delay)
        oks = []
        for i, fname in enumerate(files):
            f = h5.File(fname, "r", comm=ctx.comm, vol=vol)
            sel = consumer_grid_selection(SHAPE, ctx.rank, ctx.size)
            vals = np.asarray(f["d"].read(sel, reshape=False))
            oks.append(np.array_equal(vals, grid_values(sel, SHAPE) + i))
            f.close()
        StagedMetadataVOL.finalize_staging(inter)
        return all(oks)

    def staging(ctx):
        return staging_main(
            [ctx.intercomm("producer"), ctx.intercomm("consumer")]
        )

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_task("staging", nstage, staging)
    wf.add_link("producer", "staging")
    wf.add_link("consumer", "staging")
    return wf.run(timeout=90.0)


class TestCorrectness:
    def test_3_to_2_via_1_stager(self):
        res = build(3, 2, 1)
        assert all(res.returns["consumer"])

    def test_4_to_2_via_2_stagers(self):
        res = build(4, 2, 2)
        assert all(res.returns["consumer"])

    def test_uneven_6_to_1_via_3(self):
        res = build(6, 1, 3)
        assert all(res.returns["consumer"])

    def test_multiple_files(self):
        res = build(2, 2, 2, files=("a.h5", "b.h5", "c.h5"))
        assert all(res.returns["consumer"])

    def test_staging_ranks_hold_pieces(self):
        res = build(3, 1, 2)
        held = res.returns["staging"]
        assert all(isinstance(h, dict) and "o.h5" in h for h in held)
        assert sum(h["o.h5"] for h in held) >= 3  # every producer staged


class TestDecoupling:
    def test_producer_unblocked_by_late_consumer(self):
        """The in-transit property: a slow consumer does not hold the
        producer hostage (unlike direct mode's serve-until-done)."""
        delay = 2.0
        staged = build(3, 1, 1, consumer_delay=delay)
        t_prod = max(staged.returns["producer"])
        assert t_prod < delay / 2  # producer done long before consumer

        # Direct mode under the same delay: the producer's close cannot
        # return before the delayed consumer arrives and finishes.
        def make_vol(ctx, role):
            def factory():
                vol = DistMetadataVOL(comm=ctx.comm,
                                      under=NativeVOL(PFSStore()))
                vol.set_memory("o.h5")
                if role == "producer":
                    vol.serve_on_close("o.h5", ctx.intercomm("consumer"))
                else:
                    vol.set_consumer("o.h5", ctx.intercomm("producer"))
                return vol

            return ctx.singleton("vol", factory)

        def producer(ctx):
            vol = make_vol(ctx, "producer")
            f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("d", shape=SHAPE, dtype=h5.UINT64)
            sel = producer_grid_selection(SHAPE, ctx.rank, ctx.size)
            d.write(grid_values(sel, SHAPE), file_select=sel)
            f.close()
            return ctx.comm.vtime

        def consumer(ctx):
            vol = make_vol(ctx, "consumer")
            ctx.comm.compute(delay)
            f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
            sel = consumer_grid_selection(SHAPE, ctx.rank, ctx.size)
            vals = f["d"].read(sel, reshape=False)
            f.close()
            return validate_grid(sel, SHAPE, vals)

        wf = Workflow()
        wf.add_task("producer", 3, producer)
        wf.add_task("consumer", 1, consumer)
        wf.add_link("producer", "consumer")
        direct = wf.run(timeout=90.0)
        assert all(direct.returns["consumer"])
        t_direct_prod = max(direct.returns["producer"])
        # Direct producer is coupled to the consumer's schedule.
        assert t_direct_prod > delay
        assert t_prod < t_direct_prod
