"""Failure injection: errors must propagate loudly, never hang or
corrupt."""

import numpy as np
import pytest

import repro.h5 as h5
from repro.faults import FaultPlan, RpcFaultRule
from repro.h5.errors import NotFoundError, SelectionError
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.lowfive.rpc import RetriesExhausted, RPCError, RPCTimeout
from repro.pfs import PFSStore
from repro.simmpi import DeadlockError
from repro.workflow import Workflow


def make_pair(producer_body, consumer_body, nprod=2, ncons=1,
              timeout=60.0, faults=None):
    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
            vol.set_memory("f.h5")
            if role == "producer":
                vol.serve_on_close("f.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("f.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        return producer_body(ctx, vol)

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        return consumer_body(ctx, vol)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf.run(timeout=timeout, faults=faults)


def normal_producer(ctx, vol):
    f = h5.File("f.h5", "w", comm=ctx.comm, vol=vol)
    d = f.create_dataset("d", shape=(4, 4), dtype="u8")
    d.write(np.zeros(8, dtype=np.uint64),
            file_select=h5.hyperslab((2 * ctx.rank, 0), (2, 4)))
    f.close()
    return True


def test_consumer_requesting_missing_dataset_gets_error():
    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)
        with pytest.raises(NotFoundError):
            f["does_not_exist"]
        f.close()
        return True

    res = make_pair(normal_producer, consumer)
    assert res.returns["consumer"] == [True]


def test_consumer_bad_selection_rejected_locally():
    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)
        d = f["d"]
        with pytest.raises(SelectionError):
            d.read(h5.hyperslab((0, 0), (5, 5)))  # exceeds (4,4)
        f.close()
        return True

    res = make_pair(normal_producer, consumer)
    assert res.returns["consumer"] == [True]


def test_consumer_exception_propagates_to_run():
    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)  # noqa: ANL005
        raise RuntimeError("analysis blew up")

    with pytest.raises(RuntimeError, match="analysis blew up"):
        make_pair(normal_producer, consumer)


def test_producer_exception_wakes_blocked_consumer():
    def producer(ctx, vol):
        raise RuntimeError("simulation diverged")

    def consumer(ctx, vol):
        # Blocks forever waiting for metadata; the producer failure
        # must tear it down instead of deadlocking.
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)  # noqa: ANL005
        return True

    with pytest.raises(RuntimeError, match="simulation diverged"):
        make_pair(producer, consumer, timeout=10.0)


def test_consumer_never_closing_times_out_producer():
    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)  # noqa: ANL005
        f["d"].read()
        return "never closed"  # producer's serve waits for done

    with pytest.raises((RPCError, DeadlockError)):
        make_pair(normal_producer, consumer, timeout=1.0)


def test_rpc_error_reply_does_not_kill_server():
    """A failing request errors the caller only; later requests work."""
    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)
        from repro.lowfive.rpc import RPCClient

        client = f._token.fstate.remote_client
        with pytest.raises(RPCError):
            client.call(0, "read", "f.h5", "/missing",
                        h5.AllSelection((4, 4)))
        vals = f["d"].read()  # still served fine
        f.close()
        return vals.shape == (4, 4)

    res = make_pair(normal_producer, consumer)
    assert res.returns["consumer"] == [True]


def test_rpc_error_hierarchy_is_layered():
    # Code that only knows RPCError keeps working when the fault layer
    # raises the more precise types.
    assert issubclass(RPCTimeout, RPCError)
    assert issubclass(RetriesExhausted, RPCTimeout)
    assert issubclass(RetriesExhausted, RPCError)


def test_retries_exhausted_degrades_gracefully():
    """One consumer's read RPC is persistently lost: that consumer gets
    a typed RetriesExhausted, the *other* consumer reads fine, and the
    producer's serve loop terminates normally."""
    # World ranks: producers 0-1, consumers 2-3; rank 3 is the victim.
    plan = FaultPlan(0, rpcs=[RpcFaultRule(fn="read", caller=3,
                                           lose_first=10)])

    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)
        d = f["d"]
        if ctx.world.rank == 3:
            with pytest.raises(RetriesExhausted):
                d.read()
            ok = "degraded"
        else:
            ok = "read" if d.read().shape == (4, 4) else "corrupt"
        f.close()  # still signals done; the producer is released
        return ok

    res = make_pair(normal_producer, consumer, ncons=2, faults=plan)
    assert sorted(res.returns["consumer"]) == ["degraded", "read"]
    assert res.returns["producer"] == [True, True]
    assert plan.injected_counts()["rpc_lost"] >= 4  # 1 try + 3 retries


def test_transient_rpc_loss_is_retried_transparently():
    """Losing fewer attempts than the retry budget is invisible."""
    plan = FaultPlan(0, rpcs=[RpcFaultRule(fn="read", lose_first=2)])

    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)
        vals = f["d"].read()
        f.close()
        return vals.shape == (4, 4)

    res = make_pair(normal_producer, consumer, faults=plan)
    assert res.returns["consumer"] == [True]
    assert plan.injected_counts()["rpc_lost"] >= 2
    retries = sum(
        v.total for (kind, key), v
        in res.obs.metrics.snapshot().data.items()
        if kind == "counter" and key[0] == "rpc.retry.count"
    )
    assert retries >= 2


def test_consumer_stalling_in_virtual_time_trips_serve_timeout():
    """The serve timeout is virtual: a consumer that burns simulated
    time without ever closing trips RPCTimeout on the producer."""
    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)  # noqa: ANL005
        f["d"].read()
        ctx.comm.compute(100.0)  # >> the serve loop's 60 virtual s
        return "wandered off"    # never closed -> no done signal

    with pytest.raises(RPCTimeout, match="starved"):
        make_pair(normal_producer, consumer, timeout=30.0)


def test_clocks_nonnegative_and_final_time_positive():
    def consumer(ctx, vol):
        f = h5.File("f.h5", "r", comm=ctx.comm, vol=vol)
        f["d"].read()
        f.close()
        return ctx.comm.vtime

    res = make_pair(normal_producer, consumer)
    assert res.vtime > 0
    assert all(t >= 0 for t in res.returns["consumer"])
