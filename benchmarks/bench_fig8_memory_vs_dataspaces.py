"""Figure 8: LowFive memory mode vs DataSpaces, weak scaling (Cori
Haswell).

Paper result: DataSpaces is consistently faster (it uses dedicated
staging ranks, metadata-only put_local, and avoids LowFive's file-close
synchronization); the gap at 4K processes is ~0.5 s, and the two curves
are roughly parallel.
"""

import pytest

from conftest import EXECUTED_SCALES, PAPER_SCALES, executed_workload
from repro.bench import (
    ascii_loglog,
    format_series_table,
    run_dataspaces,
    run_lowfive_memory,
    write_result,
)
from repro.perfmodel import CORI_HASWELL, dataspaces_time, lowfive_memory_time
from repro.synth import SyntheticWorkload

SCALES = [P for P in PAPER_SCALES if P <= 4096]  # paper stops at 4K
#: "At full scale, we used 4 additional compute nodes for the
#: DataSpaces server."
STAGING_RANKS = 4


def fig8_series():
    wl = SyntheticWorkload()
    lf, ds = [], []
    for P in SCALES:
        nprod, ncons = wl.split_procs(P)
        lf.append(lowfive_memory_time(nprod, ncons, wl, CORI_HASWELL))
        ds.append(dataspaces_time(nprod, ncons, wl, CORI_HASWELL,
                                  nservers=STAGING_RANKS))
    return lf, ds


def test_fig8_regenerate(benchmark, exec_wl):
    lf, ds = fig8_series()
    text = format_series_table(
        SCALES,
        {"LowFive Memory Mode": lf, "DataSpaces": ds},
        title="Figure 8: weak scaling, LowFive memory mode vs DataSpaces "
              f"(modeled, Cori Haswell; DataSpaces uses {STAGING_RANKS} "
              "extra staging ranks)",
    )

    # DataSpaces consistently faster; ~0.5s gap at 4K; parallel curves.
    assert all(d < l for d, l in zip(ds, lf))
    assert 0.3 < lf[-1] - ds[-1] < 0.8
    ratios = [l / d for l, d in zip(lf, ds)]
    assert max(ratios) / min(ratios) < 1.6
    # Sub-2s absolute range, as in the paper's Haswell plot.
    assert lf[-1] < 2.0

    plot = ascii_loglog(
        SCALES, {"LowFive Memory Mode": lf, "DataSpaces": ds},
        title="Figure 8 (reproduced, log-log)",
    )
    lines = [text, plot, "Executed validation (reduced workload, simmpi):"]
    for P in EXECUTED_SCALES:
        nprod, ncons = exec_wl.split_procs(P)
        ex_lf = run_lowfive_memory(nprod, ncons, exec_wl, CORI_HASWELL)
        ex_ds = run_dataspaces(nprod, ncons, exec_wl, CORI_HASWELL,
                               nservers=2)
        assert ex_ds.vtime < ex_lf.vtime
        lines.append(
            f"  P={P:3d}: executed LowFive {ex_lf.vtime:8.3f}s, "
            f"DataSpaces {ex_ds.vtime:8.3f}s (+2 staging ranks)"
        )
    write_result("fig8_memory_vs_dataspaces.txt", "\n".join(lines) + "\n")

    nprod, ncons = exec_wl.split_procs(8)
    benchmark.pedantic(
        lambda: run_dataspaces(nprod, ncons, exec_wl, CORI_HASWELL,
                               nservers=2),
        rounds=3, iterations=1,
    )
