"""Figure 7: LowFive memory mode vs hand-written pure MPI, weak scaling.

Paper result: LowFive is 10-40% *faster* at small scale (it serializes
contiguous regions in bulk while the hand-written code packs point by
point) and ~6% slower at 16K (synchronization overheads).
"""

import pytest

from conftest import PAPER_SCALES, attribution_line, executed_workload
from repro.bench import (
    ascii_loglog,
    format_series_table,
    run_lowfive_memory,
    run_pure_mpi,
    write_result,
)
from repro.perfmodel import THETA_KNL, lowfive_memory_time, pure_mpi_time
from repro.synth import SyntheticWorkload


def fig7_series():
    wl = SyntheticWorkload()
    lf, mpi = [], []
    for P in PAPER_SCALES:
        nprod, ncons = wl.split_procs(P)
        lf.append(lowfive_memory_time(nprod, ncons, wl, THETA_KNL))
        mpi.append(pure_mpi_time(nprod, ncons, wl, THETA_KNL))
    return lf, mpi


def test_fig7_regenerate(benchmark, exec_wl):
    lf, mpi = fig7_series()
    text = format_series_table(
        PAPER_SCALES,
        {"LowFive Memory Mode": lf, "Pure MPI": mpi},
        title="Figure 7: weak scaling, LowFive memory mode vs pure MPI "
              "(modeled, Theta KNL)",
    )

    # Paper shapes: LowFive 10-40% faster at small scale ...
    assert 1.10 < mpi[0] / lf[0] < 1.45
    assert lf[1] < mpi[1] and lf[2] < mpi[2]
    # ... and slightly (~6%) slower at 16K, with a small absolute gap.
    assert 1.0 < lf[-1] / mpi[-1] < 1.25
    assert abs(lf[-1] - mpi[-1]) < 0.6  # paper: 0.2 s at 16K

    # Executed validation at the paper's full 1e6-element workload (the
    # LowFive-vs-MPI ordering is a property of that regime, where
    # per-element serialization dominates; smaller workloads sit at the
    # crossover).
    plot = ascii_loglog(
        PAPER_SCALES, {"LowFive Memory Mode": lf, "Pure MPI": mpi},
        title="Figure 7 (reproduced, log-log)",
    )
    full_wl = SyntheticWorkload()
    lines = [text, plot,
             "Executed validation (full 1e6/proc workload, simmpi):"]
    for P in (4, 8):
        nprod, ncons = full_wl.split_procs(P)
        ex_lf = run_lowfive_memory(nprod, ncons, full_wl)
        ex_mpi = run_pure_mpi(nprod, ncons, full_wl)
        assert ex_lf.vtime < ex_mpi.vtime  # LowFive wins at small scale
        lines.append(
            f"  P={P:3d}: executed LowFive {ex_lf.vtime:8.3f}s, "
            f"pure MPI {ex_mpi.vtime:8.3f}s "
            f"(LowFive {ex_mpi.vtime / ex_lf.vtime:4.2f}x faster)"
        )
        for label, r in (("lowfive", ex_lf), ("mpi", ex_mpi)):
            a = r.attribution
            assert a is not None and a["conservation_ok"]
            assert abs(a["critpath_residual"]) <= 1e-9
            lines.append(f"         {label:7s} {attribution_line(r)}")
        # Pure MPI never enters the LowFive/RPC layer.
        assert ex_mpi.attribution["critpath"]["lowfive"] < 0.01
    write_result("fig7_memory_vs_mpi.txt", "\n".join(lines) + "\n")

    nprod, ncons = exec_wl.split_procs(8)
    benchmark.pedantic(
        lambda: run_pure_mpi(nprod, ncons, exec_wl),
        rounds=3, iterations=1,
    )
