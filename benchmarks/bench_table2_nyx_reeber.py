"""Table II: the Nyx-Reeber cosmology use case (Cori KNL).

Modeled at the paper's configuration (4096 Nyx + 1024 Reeber processes,
grids 256^3 ... 2048^3, two snapshots), plus an executed end-to-end run
of the proxy pipeline at test scale with halo validation.
"""

import numpy as np
import pytest

import repro.h5 as h5
from conftest import executed_workload
from repro.bench import format_table, write_result
from repro.cosmo import NyxProxy, write_snapshot_h5
from repro.cosmo.nyx import DENSITY_PATH
from repro.cosmo.plotfile import write_plotfile
from repro.cosmo.reeber import find_halos_distributed, find_halos_serial
from repro.diy import Bounds, RegularDecomposer
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.perfmodel import THETA_KNL
from repro.perfmodel.nyx_reeber import table2_rows
from repro.pfs import PFSStore
from repro.simmpi import run_world
from repro.workflow import Workflow


def test_table2_regenerate(benchmark):
    rows = table2_rows()
    table = format_table(
        ["Data Size", "LowFive Write", "LowFive Read", "HDF5 Write",
         "HDF5 Read", "Plotfiles Write", "LowFive vs HDF5",
         "LowFive vs Plotfiles"],
        [[f"{r['grid']}^3", r["lowfive_write"], r["lowfive_read"],
          r["hdf5_write"], r["hdf5_read"], r["plotfile_write"],
          r["speedup_vs_hdf5"], r["speedup_vs_plotfiles"]] for r in rows],
        title="Table II: Nyx-Reeber use case, modeled at 4096+1024 procs "
              "(Cori KNL), 2 snapshots; 'x' = did not finish in 1.5 h",
    )

    by_grid = {r["grid"]: r for r in rows}
    # Paper shapes: HDF5 DNF at 2048^3; speedups grow with the grid;
    # plotfiles sit between HDF5 and LowFive.
    assert by_grid[2048]["hdf5_write"] is None
    assert by_grid[1024]["speedup_vs_hdf5"] > 100
    assert by_grid[2048]["speedup_vs_plotfiles"] > 10
    sp = [by_grid[g]["speedup_vs_hdf5"] for g in (256, 512, 1024)]
    assert sp[0] < sp[1] < sp[2]

    # Executed end-to-end pipeline at test scale, with halo validation.
    n, threshold = 16, 2.0
    serial = NyxProxy(n, None, seed=11, max_grid_size=8)
    dens = serial.advance()
    full = np.zeros((n, n, n))
    for bid in dens.local_box_ids:
        box = dens.boxarray[bid]
        full[tuple(slice(l, h) for l, h in zip(box.min, box.max))] = \
            dens.fab(bid)
    expected = [h_.round() for h_ in find_halos_serial(full, threshold)]

    def nyx(ctx):
        def make():
            vol = DistMetadataVOL(comm=ctx.comm,
                                  under=NativeVOL(PFSStore()))
            vol.set_memory("plt.h5")
            vol.serve_on_close("plt.h5", ctx.intercomm("reeber"))
            return vol

        vol = ctx.singleton("vol", make)
        sim = NyxProxy(n, ctx.comm, seed=11, max_grid_size=8)
        density = sim.advance()
        write_snapshot_h5("plt.h5", density, ctx.comm, vol, step=0)

    def reeber(ctx):
        def make():
            vol = DistMetadataVOL(comm=ctx.comm,
                                  under=NativeVOL(PFSStore()))
            vol.set_memory("plt.h5")
            vol.set_consumer("plt.h5", ctx.intercomm("nyx"))
            return vol

        vol = ctx.singleton("vol", make)
        f = h5.File("plt.h5", "r", comm=ctx.comm, vol=vol)
        dset = f[DENSITY_PATH]
        dec = RegularDecomposer(dset.shape, ctx.size)
        b = dec.block_bounds(ctx.rank) if ctx.rank < dec.ngrid_blocks \
            else Bounds([0, 0, 0], [0, 0, 0])
        block = np.asarray(dset.read(b.to_selection(dset.shape)))
        f.close()
        halos = find_halos_distributed(ctx.comm, block, b, dset.shape,
                                       threshold)
        return [h_.round() for h_ in halos]

    def run_pipeline():
        wf = Workflow()
        wf.add_task("nyx", 4, nyx)
        wf.add_task("reeber", 2, reeber)
        wf.add_link("nyx", "reeber")
        return wf.run(model=THETA_KNL.net)

    res = benchmark.pedantic(run_pipeline, rounds=2, iterations=1)
    for halos in res.returns["reeber"]:
        assert halos == expected

    lines = [table,
             f"Executed validation: 16^3 proxy pipeline, 4 Nyx + 2 Reeber "
             f"ranks, {len(expected)} halos found in situ, matching the "
             f"serial reference (vtime {res.vtime:.3f}s)."]
    write_result("table2_nyx_reeber.txt", "\n".join(lines) + "\n")


def test_table2_plotfile_baseline_executes(benchmark):
    """The plotfile write path really runs (the Table II column)."""
    store = PFSStore()

    def main(comm):
        sim = NyxProxy(16, comm, seed=4, max_grid_size=8)
        density = sim.advance()
        write_plotfile(store, "plt00000", density, comm, step=0, nfiles=2)
        return True

    def run():
        s2 = PFSStore()

        def m(comm):
            sim = NyxProxy(16, comm, seed=4, max_grid_size=8)
            write_plotfile(s2, "plt", sim.advance(), comm, step=0, nfiles=2)

        return run_world(4, m)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.vtime > 0
    run_world(4, main)
    assert any(name.startswith("plt00000/") for name in store.listdir())
