"""Figure 6: LowFive file mode vs pure HDF5 file I/O, weak scaling.

Paper result: LowFive's overhead over pure HDF5 is largest at mid scale
(~2x at 64 procs) and vanishes within run-to-run variance at 1024.
"""

import pytest

from conftest import EXECUTED_SCALES, PAPER_SCALES, executed_workload
from repro.bench import (
    ascii_loglog,
    format_series_table,
    run_lowfive_file,
    run_pure_hdf5,
    write_result,
)
from repro.perfmodel import THETA_KNL, lowfive_file_time, pure_hdf5_time
from repro.synth import SyntheticWorkload

SCALES = [P for P in PAPER_SCALES if P <= 1024]  # paper stops at 1024


def fig6_series():
    wl = SyntheticWorkload()
    lf, h5 = [], []
    for P in SCALES:
        nprod, ncons = wl.split_procs(P)
        lf.append(lowfive_file_time(nprod, ncons, wl, THETA_KNL))
        h5.append(pure_hdf5_time(nprod, ncons, wl, THETA_KNL))
    return lf, h5


def test_fig6_regenerate(benchmark, exec_wl):
    lf, h5 = fig6_series()
    text = format_series_table(
        SCALES,
        {"LowFive File Mode": lf, "Pure HDF5": h5},
        title="Figure 6: weak scaling, LowFive file mode vs pure HDF5 "
              "(modeled, Theta KNL)",
    )

    ratios = [a / b for a, b in zip(lf, h5)]
    # Overhead is bounded (paper: at most ~2x) ...
    assert all(1.0 < r < 2.5 for r in ratios)
    # ... and converges at scale (within-variance at 1024).
    assert ratios[-1] < max(ratios)
    assert ratios[-1] < 1.2

    plot = ascii_loglog(
        SCALES, {"LowFive File Mode": lf, "Pure HDF5": h5},
        title="Figure 6 (reproduced, log-log)",
    )
    lines = [text, plot, "Executed validation (reduced workload, simmpi):"]
    for P in EXECUTED_SCALES:
        nprod, ncons = exec_wl.split_procs(P)
        ex_lf = run_lowfive_file(nprod, ncons, exec_wl)
        ex_h5 = run_pure_hdf5(nprod, ncons, exec_wl)
        assert ex_lf.vtime > ex_h5.vtime  # overhead exists
        lines.append(
            f"  P={P:3d}: executed LowFive-file {ex_lf.vtime:8.3f}s, "
            f"pure HDF5 {ex_h5.vtime:8.3f}s, "
            f"overhead {ex_lf.vtime / ex_h5.vtime:5.2f}x"
        )
    write_result("fig6_filemode_vs_hdf5.txt", "\n".join(lines) + "\n")

    nprod, ncons = exec_wl.split_procs(8)
    benchmark.pedantic(
        lambda: run_pure_hdf5(nprod, ncons, exec_wl),
        rounds=3, iterations=1,
    )
