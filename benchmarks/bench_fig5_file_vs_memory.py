"""Figure 5: LowFive file mode vs memory mode, weak scaling (Theta).

Modeled series at the paper's scales (file mode terminated at 1024, as
in the paper), plus executed validation points with a reduced workload.
"""

import pytest

from conftest import (
    EXECUTED_SCALES,
    PAPER_SCALES,
    attribution_line,
    executed_workload,
)
from repro.bench import (
    ascii_loglog,
    format_series_table,
    run_lowfive_file,
    run_lowfive_memory,
    write_result,
)
from repro.perfmodel import THETA_KNL, lowfive_file_time, lowfive_memory_time
from repro.synth import SyntheticWorkload

FILE_MODE_CUTOFF = 1024  # paper: "terminated ... because of the long run time"


def fig5_series():
    wl = SyntheticWorkload()
    file_mode, memory_mode = [], []
    for P in PAPER_SCALES:
        nprod, ncons = wl.split_procs(P)
        memory_mode.append(lowfive_memory_time(nprod, ncons, wl, THETA_KNL))
        file_mode.append(
            lowfive_file_time(nprod, ncons, wl, THETA_KNL)
            if P <= FILE_MODE_CUTOFF else None
        )
    return file_mode, memory_mode


def test_fig5_regenerate(benchmark, exec_wl):
    file_mode, memory_mode = fig5_series()
    text = format_series_table(
        PAPER_SCALES,
        {"LowFive File Mode": file_mode, "LowFive Memory Mode": memory_mode},
        title="Figure 5: weak scaling, LowFive file vs memory mode "
              "(modeled, Theta KNL; file mode terminated at 1K as in the "
              "paper)",
    )

    # Shape assertions from the paper.
    for f, m in zip(file_mode, memory_mode):
        if f is not None:
            assert f > m
    assert file_mode[4] > 30 * memory_mode[4]       # orders apart at 1K
    assert memory_mode[-1] < 4 * memory_mode[0]     # memory rises slowly
    assert 1.0 < memory_mode[-1] < 10.0             # ~3s at 16K in paper

    plot = ascii_loglog(
        PAPER_SCALES,
        {"LowFive File Mode": file_mode, "LowFive Memory Mode": memory_mode},
        title="Figure 5 (reproduced, log-log)",
    )

    # Executed validation points (reduced workload, real data moved).
    lines = [text, plot, "Executed validation (reduced workload, simmpi):"]
    for P in EXECUTED_SCALES:
        nprod, ncons = exec_wl.split_procs(P)
        mem = run_lowfive_memory(nprod, ncons, exec_wl)
        fil = run_lowfive_file(nprod, ncons, exec_wl)
        model_mem = lowfive_memory_time(nprod, ncons, exec_wl)
        assert fil.vtime > mem.vtime
        assert model_mem == pytest.approx(mem.vtime, rel=0.4)
        lines.append(
            f"  P={P:3d}: executed memory {mem.vtime:8.3f}s "
            f"(model {model_mem:8.3f}s), executed file {fil.vtime:8.3f}s"
        )
        for label, r in (("memory", mem), ("file", fil)):
            a = r.attribution
            # Per-rank time conservation and exact path telescoping
            # must hold on every executed point.
            assert a is not None and a["conservation_ok"]
            assert abs(a["critpath_residual"]) <= 1e-9
            lines.append(f"         {label:6s} {attribution_line(r)}")
        # The figure's causal story: file mode's critical path lives on
        # the PFS (and consumers block on PFS contention), memory
        # mode's transport never touches it -- its path is the LowFive
        # index/serve machinery plus MPI transfer.
        assert fil.attribution["critpath"]["pfs"] > 0.5
        assert fil.attribution["wait_by_category"].get(
            "pfs-contention", 0.0) > 0.0
        assert mem.attribution["critpath"]["pfs"] < 0.05
        assert mem.attribution["wait_by_category"].get(
            "pfs-contention", 0.0) < 1e-9
        mcp = mem.attribution["critpath"]
        assert mcp["lowfive"] + mcp["simmpi"] > 0.5
    write_result("fig5_file_vs_memory.txt", "\n".join(lines) + "\n")

    # Benchmark target: one executed memory-mode point.
    nprod, ncons = exec_wl.split_procs(8)
    benchmark.pedantic(
        lambda: run_lowfive_memory(nprod, ncons, exec_wl),
        rounds=3, iterations=1,
    )
