#!/usr/bin/env python
"""Streaming-pipeline benchmark: reduction sweep + backpressure probe.

``python benchmarks/bench_stream.py --output BENCH_stream.json``
sweeps a multi-epoch streaming pipeline (``repro.stream``) over total
rank counts P and wire-reduction levels, recording bytes-on-wire and
virtual makespan for each point, plus:

- a *direct* per-epoch baseline (plain ``serve_on_close`` file cycle,
  no streaming machinery) at every P -- level 0 must read
  bit-identical data (checked by digest) while moving the same bytes;
- bytes-on-wire must decrease strictly monotonically with the
  reduction level at every P;
- a 2x rate-mismatch run (consumer twice slower than the producer):
  the live-epoch window must stay bounded by ``max_lag`` and the
  producer's backpressure waits must be attributed to the lagging
  consumer ranks in the causal report.

Invariant violations always exit nonzero. With ``--check-ref`` the
virtual fields are additionally compared against the committed
reference (``benchmarks/BENCH_stream_ref.json``) via the shared
:mod:`repro.obs.ledger` comparator; any drift exits nonzero. Wall
seconds are recorded for information only. ``--ledger PATH`` appends
every run to a JSONL run ledger.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

#: Bump when the document layout changes incompatibly.
SCHEMA_VERSION = 1

#: Virtual fields that must be bit-identical across perf-only changes.
VIRTUAL_FIELDS = ("vtime", "messages", "bytes_sent")

DEFAULT_REF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_stream_ref.json")

SHAPE = (24, 16)


def _epoch_values(sel, shape, epoch):
    import numpy as np

    from repro.synth import grid_values

    return grid_values(sel, shape) + np.uint64(1000 * epoch)


def _digest(parts) -> str:
    """Combine per-rank digests (rank order) into one run digest."""
    h = hashlib.blake2b(digest_size=16)
    for p in parts:
        h.update(p.encode())
    return h.hexdigest()


def run_stream(nprod, ncons, nsteps, *, level=0, max_lag=2,
               producer_compute=0.0, consumer_compute=0.0):
    """Streaming pipeline run; returns (result, data digest)."""
    import numpy as np

    from repro.h5.native import NativeVOL
    import repro.h5 as h5
    from repro.lowfive import DistMetadataVOL, StreamConfig
    from repro.lowfive.config import CostConfig
    from repro.pfs import PFSStore
    from repro.synth import consumer_grid_selection, producer_grid_selection
    from repro.workflow import Workflow

    costs = CostConfig(reduction_level=level)

    def make_vol(ctx):
        return ctx.singleton("vol", lambda: DistMetadataVOL(
            comm=ctx.comm, under=NativeVOL(PFSStore()), costs=costs))

    def producer(ctx):
        vol = make_vol(ctx)
        cfg = StreamConfig(max_lag=max_lag)
        with ctx.stream_producer("consumer", "sim", vol, cfg) as prod:
            for step in range(nsteps):
                if producer_compute:
                    ctx.comm.compute(producer_compute)
                with prod.epoch() as f:
                    d = f.create_dataset("grid", shape=SHAPE,
                                         dtype=h5.UINT64)
                    sel = producer_grid_selection(SHAPE, ctx.rank,
                                                  ctx.size)
                    d.write(_epoch_values(sel, SHAPE, step),
                            file_select=sel)
        return True

    def consumer(ctx):
        vol = make_vol(ctx)
        h = hashlib.blake2b(digest_size=16)
        with ctx.stream_consumer("producer", "sim", vol) as cons:
            for ep in cons.epochs():
                with ep:
                    sel = consumer_grid_selection(SHAPE, ctx.rank,
                                                  ctx.size)
                    vals = np.asarray(ep.file["grid"].read(
                        sel, reshape=False))
                    h.update(vals.tobytes())
                if consumer_compute:
                    ctx.comm.compute(consumer_compute)
        return h.hexdigest()

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(timeout=600.0)
    return res, _digest(res.returns["consumer"])


def run_direct(nprod, ncons, nsteps):
    """Per-epoch direct baseline: write/serve one file per epoch."""
    import numpy as np

    from repro.h5.native import NativeVOL
    import repro.h5 as h5
    from repro.lowfive import DistMetadataVOL
    from repro.pfs import PFSStore
    from repro.stream import epoch_fname, stream_pattern
    from repro.synth import consumer_grid_selection, producer_grid_selection
    from repro.workflow import Workflow

    pattern = stream_pattern("sim")

    def make_vol(ctx, role):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm,
                                  under=NativeVOL(PFSStore()))
            vol.set_memory(pattern)
            if role == "producer":
                vol.serve_on_close(pattern, ctx.intercomm("consumer"))
            else:
                vol.set_consumer(pattern, ctx.intercomm("producer"))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer")
        for step in range(nsteps):
            f = h5.File(epoch_fname("sim", step), "w", comm=ctx.comm,
                        vol=vol)
            d = f.create_dataset("grid", shape=SHAPE, dtype=h5.UINT64)
            sel = producer_grid_selection(SHAPE, ctx.rank, ctx.size)
            d.write(_epoch_values(sel, SHAPE, step), file_select=sel)
            f.close()  # serves this epoch's consumers before returning
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer")
        h = hashlib.blake2b(digest_size=16)
        for step in range(nsteps):
            f = h5.File(epoch_fname("sim", step), "r", comm=ctx.comm,
                        vol=vol)
            sel = consumer_grid_selection(SHAPE, ctx.rank, ctx.size)
            vals = np.asarray(f["grid"].read(sel, reshape=False))
            h.update(vals.tobytes())
            f.close()
        return h.hexdigest()

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(timeout=600.0)
    return res, _digest(res.returns["consumer"])


def _record(workload, nprocs, wall, res, **extra):
    rec = {
        "workload": workload,
        "nprocs": nprocs,
        "wall_seconds": wall,
        "vtime": res.vtime,
        "messages": res.messages,
        "bytes_sent": res.bytes_sent,
    }
    rec.update(extra)
    return rec


def run_suite(procs, levels, nsteps, max_lag):
    """Execute the sweep; returns (records, invariant problems)."""
    runs = []
    problems = []
    for P in procs:
        nprod = max(1, P // 2)
        ncons = max(1, P - nprod)
        t0 = time.perf_counter()
        res, direct_digest = run_direct(nprod, ncons, nsteps)
        runs.append(_record(f"stream/direct/P{P}", P,
                            time.perf_counter() - t0, res,
                            digest=direct_digest))
        by_level = {}
        for level in levels:
            t0 = time.perf_counter()
            res, digest = run_stream(nprod, ncons, nsteps, level=level,
                                     max_lag=max_lag)
            by_level[level] = res.bytes_sent
            runs.append(_record(f"stream/level{level}/P{P}", P,
                                time.perf_counter() - t0, res,
                                reduction_level=level, digest=digest,
                                max_depth=res.obs.stream.max_depth()))
            if level == 0 and digest != direct_digest:
                problems.append(
                    f"P{P}: level-0 stream digest {digest} != direct "
                    f"baseline {direct_digest} (must be bit-identical)")
        ordered = [by_level[lv] for lv in sorted(by_level)]
        if any(a <= b for a, b in zip(ordered, ordered[1:])):
            problems.append(
                f"P{P}: bytes on wire not strictly decreasing with "
                f"reduction level: {ordered}")
    return runs, problems


def run_rate_mismatch(nsteps, max_lag):
    """2x-slower consumer: bounded depth + attributed backpressure."""
    t0 = time.perf_counter()
    res, _ = run_stream(2, 2, nsteps, level=0, max_lag=max_lag,
                        producer_compute=0.01, consumer_compute=0.02)
    wall = time.perf_counter() - t0
    rep = res.causal_report()
    bp = [w for w in rep.waits if w.category == "backpressure"]
    depth = res.obs.stream.max_depth("sim")
    problems = []
    if depth > max_lag:
        problems.append(f"rate-mismatch: max depth {depth} exceeds "
                        f"max_lag {max_lag}")
    consumer_worlds = {2, 3}  # ranks of the consumer task (2 prod + 2 cons)
    causes = {w.cause_rank for w in bp}
    if not bp:
        problems.append("rate-mismatch: no backpressure waits recorded")
    elif not causes <= consumer_worlds:
        problems.append(f"rate-mismatch: backpressure attributed to "
                        f"{sorted(causes)}, expected a subset of "
                        f"consumer ranks {sorted(consumer_worlds)}")
    rec = _record("stream/rate_mismatch/P4", 4, wall, res,
                  max_depth=depth, max_lag=max_lag,
                  backpressure_seconds=sum(w.seconds for w in bp),
                  backpressure_cause_ranks=sorted(causes))
    return rec, problems


def compare(runs, ref):
    """Drift problems vs the reference document. Thin wrapper over the
    shared :func:`repro.obs.ledger.compare_runs` comparator."""
    from repro.obs.ledger import compare_runs

    return compare_runs(runs, ref, exact=VIRTUAL_FIELDS,
                        check_digest=True, annotate_wall=False)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    ap.add_argument("--output", default="BENCH_stream.json",
                    help="output path (default BENCH_stream.json)")
    ap.add_argument("--procs", type=int, nargs="+",
                    default=(4, 16, 64),
                    help="total ranks per sweep point (default 4 16 64)")
    ap.add_argument("--levels", type=int, nargs="+", default=(0, 1, 2),
                    help="reduction levels to sweep (default 0 1 2)")
    ap.add_argument("--nsteps", type=int, default=3,
                    help="epochs per run (default 3)")
    ap.add_argument("--max-lag", type=int, default=2,
                    help="live-epoch window bound (default 2)")
    ap.add_argument("--ref", default=DEFAULT_REF,
                    help="reference document for the drift gate")
    ap.add_argument("--check-ref", action="store_true",
                    help="exit nonzero when any virtual field drifts "
                         "from the reference")
    ap.add_argument("--ledger", default=None, metavar="PATH",
                    help="append every run to this JSONL run ledger")
    args = ap.parse_args(argv)

    runs, problems = run_suite(args.procs, args.levels, args.nsteps,
                               args.max_lag)
    rec, mismatch_problems = run_rate_mismatch(args.nsteps * 2,
                                               args.max_lag)
    runs.append(rec)
    problems += mismatch_problems

    from repro.obs.ledger import check_reference

    drift = check_reference(
        runs, args.ref,
        our_params={"procs": list(args.procs),
                    "levels": list(args.levels),
                    "nsteps": args.nsteps, "max_lag": args.max_lag},
        check_ref=args.check_ref, exact=VIRTUAL_FIELDS,
        check_digest=True,
    )

    doc = {
        "schema_version": SCHEMA_VERSION,
        "params": {"procs": list(args.procs),
                   "levels": list(args.levels),
                   "nsteps": args.nsteps, "max_lag": args.max_lag,
                   "shape": list(SHAPE)},
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.ledger:
        from repro.obs.ledger import Ledger

        n = Ledger(args.ledger).append_doc(doc)
        print(f"appended {n} runs to {args.ledger}")

    for run in runs:
        print(f"{run['workload']:28s} {run['wall_seconds']:7.2f}s "
              f"vtime={run['vtime']:.6g} bytes={run['bytes_sent']}")
    print(f"wrote {args.output}: {len(runs)} runs, "
          f"schema v{SCHEMA_VERSION}")
    for p in problems:
        print(f"ERROR: {p}", file=sys.stderr)
    for p in drift:
        print(f"ERROR: {p}", file=sys.stderr)
    if problems:
        return 1  # invariant violations always fail
    return 1 if (drift and args.check_ref) else 0


if __name__ == "__main__":
    raise SystemExit(main())
