"""Ablation benchmarks for LowFive's design choices.

Not figures from the paper, but measurements of the design decisions its
text argues for:

- **zero-copy vs deep copy** (Sec. I / Sec. IV-C): shallow references
  avoid the write-side copy; the Nyx repack forces deep copies.
- **contiguous serialization vs point-at-a-time** (Sec. IV-B(c)): the
  stated reason LowFive beats hand-written MPI at small scale.
- **producer push vs index-serve-query** (Sec. V-C future work,
  implemented as an extension): trading protocol round trips for
  proactive data movement when the consumer's decomposition is implied.
- **common-decomposition fan-out** (Sec. III-B): how many producers a
  consumer must contact as the producer:consumer shape changes.
"""

import numpy as np
import pytest

import repro.h5 as h5
from conftest import executed_workload
from repro.bench import format_table, run_lowfive_memory, write_result
from repro.h5.native import NativeVOL
from repro.lowfive import CostConfig, DistMetadataVOL
from repro.perfmodel import THETA_KNL
from repro.perfmodel.transports import grid_geometry
from repro.pfs import PFSStore
from repro.synth import (
    SyntheticWorkload,
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow


def _pipeline(nprod, ncons, wl, zero_copy=False, push=False):
    shape = wl.grid_shape(nprod)

    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm,
                                  under=NativeVOL(PFSStore()))
            vol.set_memory("o.h5")
            if zero_copy:
                vol.set_zero_copy("o.h5")
            if push:
                vol.enable_push("o.h5")
            if role == "producer":
                vol.serve_on_close("o.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("o.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("d", shape=shape, dtype=h5.UINT64)
        sel = producer_grid_selection(shape, ctx.rank, ctx.size)
        # With zero-copy the buffer must outlive the close; keep a ref.
        buf = grid_values(sel, shape)
        d.write(buf, file_select=sel)
        f.close()
        return buf is not None

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        vals = f["d"].read(sel, reshape=False)
        f.close()
        return validate_grid(sel, shape, vals)

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(model=THETA_KNL.net)
    assert all(res.returns["consumer"])
    return res.vtime


def test_ablation_zero_copy(benchmark, exec_wl):
    """Zero-copy removes the producer-side deep copy."""
    t_deep = _pipeline(6, 2, exec_wl, zero_copy=False)
    t_shallow = _pipeline(6, 2, exec_wl, zero_copy=True)
    assert t_shallow < t_deep
    write_result("ablation_zero_copy.txt", format_table(
        ["ownership", "completion (s)"],
        [["deep copy", t_deep], ["zero-copy (shallow)", t_shallow],
         ["saving", t_deep - t_shallow]],
        title="Ablation: per-dataset ownership (6 producers -> 2 "
              "consumers, executed)",
    ))
    benchmark.pedantic(lambda: _pipeline(6, 2, exec_wl, zero_copy=True),
                       rounds=2, iterations=1)


def test_ablation_push_vs_query(benchmark, exec_wl):
    """Producer push removes the consumer's query round trips."""
    t_query = _pipeline(6, 2, exec_wl, push=False)
    t_push = _pipeline(6, 2, exec_wl, push=True)
    assert t_push < t_query
    write_result("ablation_push_vs_query.txt", format_table(
        ["protocol", "completion (s)"],
        [["index-serve-query (paper)", t_query],
         ["producer push (extension)", t_push],
         ["saving", t_query - t_push]],
        title="Ablation: redistribution protocol (6 producers -> 2 "
              "consumers, executed)",
    ))
    benchmark.pedantic(lambda: _pipeline(6, 2, exec_wl, push=True),
                       rounds=2, iterations=1)


def test_ablation_serialization_cost(benchmark):
    """Contiguous bulk serialization vs point-at-a-time (the Fig. 7
    mechanism), isolated via the cost model."""
    wl = SyntheticWorkload()
    net = THETA_KNL.net
    n = wl.grid_points_per_proc + 3 * wl.particles_per_proc
    bytes_ = wl.grid_points_per_proc * 8 + wl.particles_per_proc * 12
    t_contig = net.memcpy_time(bytes_)
    t_points = net.pack_elements_time(n)
    assert t_points > 5 * t_contig
    write_result("ablation_serialization.txt", format_table(
        ["serialization", "seconds per producer (1e6+1e6 elements)"],
        [["contiguous regions (LowFive)", t_contig],
         ["point at a time (hand-written MPI)", t_points],
         ["ratio", t_points / t_contig]],
        title="Ablation: serialization strategy (cost model, Theta KNL)",
    ))
    benchmark(lambda: net.pack_elements_time(n))


def test_ablation_direct_vs_staged(benchmark, exec_wl):
    """Direct messaging vs in-transit staging under a late consumer --
    the decoupling trade-off of the paper's Sec. II-B, made concrete
    with LowFive's own staged mode."""
    import repro.h5 as h5_
    import numpy as np
    from repro.lowfive import StagedMetadataVOL, staging_main
    from repro.synth import (
        consumer_grid_selection as cgs,
        grid_values as gv,
        producer_grid_selection as pgs,
    )

    shape = exec_wl.grid_shape(4)
    delay = 1.0

    def run_staged():
        def producer(ctx):
            def mk():
                vol = StagedMetadataVOL(comm=ctx.comm,
                                        under=NativeVOL(PFSStore()))
                vol.set_memory("o.h5")
                vol.stage_on_close("o.h5", ctx.intercomm("staging"))
                return vol

            vol = ctx.singleton("vol", mk)
            f = h5_.File("o.h5", "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("d", shape=shape, dtype="u8")
            sel = pgs(shape, ctx.rank, ctx.size)
            d.write(gv(sel, shape), file_select=sel)
            f.close()
            t = ctx.comm.vtime
            StagedMetadataVOL.finalize_staging(ctx.intercomm("staging"))
            return t

        def consumer(ctx):
            def mk():
                vol = StagedMetadataVOL(comm=ctx.comm,
                                        under=NativeVOL(PFSStore()))
                vol.set_memory("o.h5")
                vol.set_staged_consumer("o.h5", ctx.intercomm("staging"))
                return vol

            vol = ctx.singleton("vol", mk)
            ctx.comm.compute(delay)
            f = h5_.File("o.h5", "r", comm=ctx.comm, vol=vol)
            sel = cgs(shape, ctx.rank, ctx.size)
            vals = f["d"].read(sel, reshape=False)
            f.close()
            StagedMetadataVOL.finalize_staging(ctx.intercomm("staging"))
            return np.array_equal(vals, gv(sel, shape))

        wf = Workflow()
        wf.add_task("producer", 4, producer)
        wf.add_task("consumer", 2, consumer)
        wf.add_task("staging", 2,
                    lambda ctx: staging_main([ctx.intercomm("producer"),
                                              ctx.intercomm("consumer")]))
        wf.add_link("producer", "staging")
        wf.add_link("consumer", "staging")
        res = wf.run(timeout=120.0)
        assert all(res.returns["consumer"])
        return max(res.returns["producer"]), res.vtime

    def run_direct():
        def producer(ctx):
            def mk():
                vol = DistMetadataVOL(comm=ctx.comm,
                                      under=NativeVOL(PFSStore()))
                vol.set_memory("o.h5")
                vol.serve_on_close("o.h5", ctx.intercomm("consumer"))
                return vol

            vol = ctx.singleton("vol", mk)
            f = h5_.File("o.h5", "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("d", shape=shape, dtype="u8")
            sel = pgs(shape, ctx.rank, ctx.size)
            d.write(gv(sel, shape), file_select=sel)
            f.close()
            return ctx.comm.vtime

        def consumer(ctx):
            def mk():
                vol = DistMetadataVOL(comm=ctx.comm,
                                      under=NativeVOL(PFSStore()))
                vol.set_memory("o.h5")
                vol.set_consumer("o.h5", ctx.intercomm("producer"))
                return vol

            vol = ctx.singleton("vol", mk)
            ctx.comm.compute(delay)
            f = h5_.File("o.h5", "r", comm=ctx.comm, vol=vol)
            sel = cgs(shape, ctx.rank, ctx.size)
            vals = f["d"].read(sel, reshape=False)
            f.close()
            return np.array_equal(vals, gv(sel, shape))

        wf = Workflow()
        wf.add_task("producer", 4, producer)
        wf.add_task("consumer", 2, consumer)
        wf.add_link("producer", "consumer")
        res = wf.run(timeout=120.0)
        assert all(res.returns["consumer"])
        return max(res.returns["producer"]), res.vtime

    t_prod_staged, t_staged = run_staged()
    t_prod_direct, t_direct = run_direct()
    # The staging property: producers decouple from the slow consumer.
    assert t_prod_staged < delay / 2
    assert t_prod_direct > delay
    write_result("ablation_direct_vs_staged.txt", format_table(
        ["mode", "producer done (s)", "workflow done (s)",
         "extra ranks"],
        [["direct (index-serve-query)", t_prod_direct, t_direct, 0],
         ["in-transit (staged)", t_prod_staged, t_staged, 2]],
        title="Ablation: direct messaging vs in-transit staging with a "
              f"{delay:.0f}s-late consumer (4 producers, 2 consumers, "
              "executed)",
    ))
    benchmark.pedantic(run_staged, rounds=2, iterations=1)


def test_ablation_chunked_layout(benchmark):
    """Chunked vs contiguous file layout under a strided parallel write
    (the situation chunking exists for on Lustre)."""
    import numpy as np

    from repro.simmpi import run_world

    def write_time(chunks):
        vol = NativeVOL()

        def main(comm):
            f = h5.File("c.h5", "w", comm=comm, vol=vol)
            d = f.create_dataset("d", shape=(64, 64), dtype="f8",
                                 chunks=chunks)
            t0 = comm.vtime
            # Each rank writes an aligned 16-row slab.
            d.write(np.zeros(16 * 64),
                    file_select=h5.hyperslab((16 * comm.rank, 0), (16, 64)))
            dt = comm.vtime - t0
            f.close()
            return dt

        return run_world(4, main).returns[0]

    t_contig = write_time(None)
    t_aligned = write_time((16, 64))   # chunk == each rank's slab
    t_fine = write_time((2, 2))        # 512 chunks per slab
    assert t_fine > t_aligned          # metadata per chunk costs
    rows = [
        ["contiguous", t_contig],
        ["chunked, write-aligned (16x64)", t_aligned],
        ["chunked, fine (2x2)", t_fine],
    ]
    write_result("ablation_chunked_layout.txt", format_table(
        ["layout", "write time (s)"], rows,
        title="Ablation: storage layout under aligned parallel slab "
              "writes (4 ranks, executed)",
    ))
    benchmark.pedantic(lambda: write_time((16, 64)), rounds=3,
                       iterations=1)


def test_ablation_memory_footprint(benchmark):
    """Per-producer memory copies of each transport configuration --
    the paper's 'up to three copies' discussion made quantitative."""
    from repro.perfmodel.memory import footprint_table, lowfive_footprint

    wl = SyntheticWorkload()
    bytes_pp = wl.grid_points_per_proc * 8 + wl.particles_per_proc * 12
    rows = [
        [name, fp.copies, round(fp.bytes / 2**20, 1), str(fp)]
        for name, fp in footprint_table(bytes_pp)
    ]
    # Paper Sec. IV-C: the Nyx configuration peaks at three copies.
    nyx = lowfive_footprint(bytes_pp, repack=True)
    assert nyx.copies == 3.0
    write_result("ablation_memory_footprint.txt", format_table(
        ["configuration", "copies", "MiB/producer", "breakdown"],
        rows,
        title="Ablation: producer-side memory footprint "
              "(1e6+1e6 elements per producer, ~19 MiB native)",
    ))
    benchmark(lambda: footprint_table(bytes_pp))


def test_ablation_common_decomposition_fanout(benchmark):
    """How many producers each consumer contacts, as shapes vary --
    the quantity LowFive's common decomposition keeps small."""
    wl = SyntheticWorkload()
    rows = []
    frac = []
    for total in (16, 64, 256, 1024):
        nprod, ncons = wl.split_procs(total)
        gg = grid_geometry(wl.grid_shape(nprod), nprod, ncons)
        rows.append([
            total, nprod, ncons,
            float(gg.cons_owners.mean()),
            int(gg.cons_owners.max()),
            float(gg.cons_common.mean()),
        ])
        frac.append(gg.cons_owners.max() / nprod)
    # Locality: the fraction of producers a consumer contacts shrinks
    # as the job grows (never all-to-all).
    assert all(b <= a for a, b in zip(frac, frac[1:]))
    assert frac[-1] < 0.2
    write_result("ablation_fanout.txt", format_table(
        ["total procs", "producers", "consumers", "mean owners/consumer",
         "max owners/consumer", "mean common blocks queried"],
        rows,
        title="Ablation: redistribution fan-out under the common "
              "decomposition (grid dataset)",
    ))
    benchmark(lambda: grid_geometry(wl.grid_shape(48), 48, 16))
