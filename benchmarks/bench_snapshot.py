#!/usr/bin/env python
"""Write a schema-versioned machine-readable benchmark snapshot.

``python benchmarks/bench_snapshot.py --output BENCH_snapshot.json``
executes the fig5 workloads (LowFive memory and file mode) and the
fig7 pure-MPI baseline at a reduced scale and records, per run, the
virtual makespan plus the causal attribution: critical-path category
shares, aggregate compute/transfer/wait split, wait-state totals and
the conservation check. CI uploads the file as an artifact so runs can
be diffed across commits; the output is deterministic (no timestamps,
virtual clocks only).

Exits nonzero when any run fails validation or violates the per-rank
time conservation invariant. With ``--ref`` / ``--check-ref`` the
virtual fields are additionally gated against a reference snapshot via
the shared :mod:`repro.obs.ledger` comparator, and ``--ledger PATH``
appends every run to a JSONL run ledger.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Bump when the snapshot layout changes incompatibly.
SCHEMA_VERSION = 1

#: (figure, transport) -> driver name in repro.bench.
RUNS = (
    ("fig5", "lowfive_memory", "run_lowfive_memory"),
    ("fig5", "lowfive_file", "run_lowfive_file"),
    ("fig7", "pure_mpi", "run_pure_mpi"),
)


def snapshot(elems: int, scales) -> dict:
    """Execute every configured run; returns the snapshot document."""
    import repro.bench as bench
    from repro.synth import SyntheticWorkload

    wl = SyntheticWorkload(grid_points_per_proc=elems,
                           particles_per_proc=elems)
    runs = []
    for P in scales:
        nprod, ncons = wl.split_procs(P)
        for figure, transport, fn in RUNS:
            res = getattr(bench, fn)(nprod, ncons, wl)
            runs.append({
                "workload": f"{figure}/{transport}/P{P}",
                "figure": figure,
                "transport": transport,
                "nprocs": P,
                "nprod": res.nprod,
                "ncons": res.ncons,
                "vtime": res.vtime,
                "validated": res.validated,
                "messages": res.messages,
                "bytes_sent": res.bytes_sent,
                "attribution": res.attribution,
            })
    return {
        "schema_version": SCHEMA_VERSION,
        "params": {
            "elems_per_proc": elems,
            "scales": list(scales),
            "machine": "THETA_KNL",
        },
        "runs": runs,
    }


def check(doc: dict) -> list:
    """Violations (empty = snapshot is healthy)."""
    problems = []
    for run in doc["runs"]:
        who = f"{run['figure']}/{run['transport']} P={run['nprocs']}"
        if not run["validated"]:
            problems.append(f"{who}: consumer validation failed")
        a = run["attribution"]
        if a is None:
            problems.append(f"{who}: no attribution recorded")
            continue
        if not a["conservation_ok"]:
            problems.append(
                f"{who}: conservation violated "
                f"(max residual {a['max_residual']:.3e} s)"
            )
        if abs(a["critpath_residual"]) > 1e-9:
            problems.append(
                f"{who}: critical-path residual "
                f"{a['critpath_residual']:.3e} s exceeds 1e-9"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", default="BENCH_snapshot.json",
                    help="output path (default BENCH_snapshot.json)")
    ap.add_argument("--elems", type=int,
                    default=int(os.environ.get("REPRO_BENCH_ELEMS",
                                               "60000")),
                    help="elements per producer rank (default 60000, "
                         "or REPRO_BENCH_ELEMS)")
    ap.add_argument("--scales", type=int, nargs="+", default=[4, 8],
                    help="total process counts to execute (default 4 8)")
    ap.add_argument("--ref", default=None,
                    help="reference snapshot for the drift gate "
                         "(no default: snapshots are primarily "
                         "artifacts, not gates)")
    ap.add_argument("--check-ref", action="store_true",
                    help="exit nonzero when any virtual field drifts "
                         "from the reference")
    ap.add_argument("--ledger", default=None, metavar="PATH",
                    help="append every run to this JSONL run ledger")
    args = ap.parse_args(argv)

    doc = snapshot(args.elems, args.scales)
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.ledger:
        from repro.obs.ledger import Ledger

        n = Ledger(args.ledger).append_doc(doc)
        print(f"appended {n} runs to {args.ledger}")
    problems = check(doc)
    drift = []
    if args.ref or args.check_ref:
        from repro.obs.ledger import check_reference

        drift = check_reference(
            doc["runs"], args.ref or "",
            our_params={"elems_per_proc": args.elems,
                        "scales": list(args.scales)},
            check_ref=args.check_ref,
        )
    print(f"wrote {args.output}: {len(doc['runs'])} runs, "
          f"schema v{doc['schema_version']}")
    for p in problems + drift:
        print(f"ERROR: {p}", file=sys.stderr)
    if problems:
        return 1  # invariant violations always fail
    return 1 if (drift and args.check_ref) else 0


if __name__ == "__main__":
    raise SystemExit(main())
