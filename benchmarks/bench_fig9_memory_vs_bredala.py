"""Figure 9: LowFive memory mode vs Bredala, weak scaling (Theta).

Paper result: Bredala's contiguous policy handles the particle list
reasonably, but its bounding-box policy on the grid blows up at scale
(index computation/communication dominates), so LowFive is much faster
overall. The figure plots Bredala total, grid-only, and particles-only.
"""

import pytest

from conftest import EXECUTED_SCALES, PAPER_SCALES, executed_workload
from repro.bench import (
    ascii_loglog,
    format_series_table,
    run_bredala,
    run_lowfive_memory,
    write_result,
)
from repro.perfmodel import THETA_KNL, bredala_times, lowfive_memory_time
from repro.synth import SyntheticWorkload

SCALES = [P for P in PAPER_SCALES if P <= 4096]  # paper stops at 4K


def fig9_series():
    wl = SyntheticWorkload()
    lf, total, grid, parts = [], [], [], []
    for P in SCALES:
        nprod, ncons = wl.split_procs(P)
        lf.append(lowfive_memory_time(nprod, ncons, wl, THETA_KNL))
        br = bredala_times(nprod, ncons, wl, THETA_KNL)
        total.append(br["total"])
        grid.append(br["grid"])
        parts.append(br["particles"])
    return lf, total, grid, parts


def test_fig9_regenerate(benchmark, exec_wl):
    lf, total, grid, parts = fig9_series()
    text = format_series_table(
        SCALES,
        {
            "LowFive Memory Mode": lf,
            "Bredala total (grid+particles)": total,
            "Bredala grid": grid,
            "Bredala particles": parts,
        },
        title="Figure 9: weak scaling, LowFive memory mode vs Bredala "
              "(modeled, Theta KNL)",
    )

    # LowFive much faster overall; gap explodes at scale.
    assert all(l < t for l, t in zip(lf, total))
    assert total[-1] > 20 * lf[-1]
    # The grid (bbox policy) is the culprit, not the particles.
    assert grid[-1] > 20 * parts[-1]
    assert parts[-1] < 5 * parts[0]
    # Magnitudes: paper shows ~200s Bredala total at 4K vs ~2.7s LowFive.
    assert 50 < total[-1] < 500

    plot = ascii_loglog(
        SCALES,
        {"LowFive Memory Mode": lf, "Bredala total": total,
         "Bredala grid": grid, "Bredala particles": parts},
        title="Figure 9 (reproduced, log-log)",
    )
    lines = [text, plot, "Executed validation (reduced workload, simmpi):"]
    for P in EXECUTED_SCALES:
        nprod, ncons = exec_wl.split_procs(P)
        ex_lf = run_lowfive_memory(nprod, ncons, exec_wl)
        ex_br = run_bredala(nprod, ncons, exec_wl)
        assert ex_lf.vtime < ex_br.vtime
        lines.append(
            f"  P={P:3d}: executed LowFive {ex_lf.vtime:8.3f}s, "
            f"Bredala {ex_br.vtime:8.3f}s"
        )
    write_result("fig9_memory_vs_bredala.txt", "\n".join(lines) + "\n")

    nprod, ncons = exec_wl.split_procs(8)
    benchmark.pedantic(
        lambda: run_bredala(nprod, ncons, exec_wl),
        rounds=3, iterations=1,
    )
