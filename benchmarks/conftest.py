"""Shared benchmark configuration.

Every ``bench_*`` file regenerates one table or figure of the paper and
exposes at least one pytest-benchmark target measuring the executed
(simmpi) run that validates the modeled series.

Environment knobs:

- ``REPRO_BENCH_ELEMS`` (default 300000): per-process element count of
  executed validation runs. Large enough that per-element software
  costs dominate (the regime of the paper's 1e6-element runs, where
  LowFive's orderings vs the baselines hold); the full 1e6 works too,
  just slower.
- ``REPRO_RESULTS_DIR`` (default ``results``): where regenerated tables
  are written.
"""

import os

import pytest

from repro.synth import SyntheticWorkload

#: The paper's weak-scaling process counts (Table I).
PAPER_SCALES = [4, 16, 64, 256, 1024, 4096, 16384]

#: Scales small enough to execute with one thread per rank.
EXECUTED_SCALES = [4, 8, 16]


def executed_workload() -> SyntheticWorkload:
    n = int(os.environ.get("REPRO_BENCH_ELEMS", "300000"))
    return SyntheticWorkload(grid_points_per_proc=n, particles_per_proc=n)


@pytest.fixture
def exec_wl():
    return executed_workload()
