"""Shared benchmark configuration.

Every ``bench_*`` file regenerates one table or figure of the paper and
exposes at least one pytest-benchmark target measuring the executed
(simmpi) run that validates the modeled series.

Environment knobs:

- ``REPRO_BENCH_ELEMS`` (default 300000): per-process element count of
  executed validation runs. Large enough that per-element software
  costs dominate (the regime of the paper's 1e6-element runs, where
  LowFive's orderings vs the baselines hold); the full 1e6 works too,
  just slower.
- ``REPRO_RESULTS_DIR`` (default ``results``): where regenerated tables
  are written.
"""

import os

import pytest

from repro.synth import SyntheticWorkload

#: The paper's weak-scaling process counts (Table I).
PAPER_SCALES = [4, 16, 64, 256, 1024, 4096, 16384]

#: Scales small enough to execute with one thread per rank.
EXECUTED_SCALES = [4, 8, 16]


def executed_workload() -> SyntheticWorkload:
    n = int(os.environ.get("REPRO_BENCH_ELEMS", "300000"))
    return SyntheticWorkload(grid_points_per_proc=n, particles_per_proc=n)


def attribution_line(res) -> str:
    """One-line causal attribution of an ExecutedResult.

    Shows the critical-path category shares, the aggregate
    compute/transfer/wait split, and the dominant wait-state cause.
    """
    a = res.attribution
    if not a:
        return "attribution: n/a"
    cp = " ".join(f"{c}={s * 100:.1f}%"
                  for c, s in sorted(a["critpath"].items(),
                                     key=lambda kv: -kv[1])
                  if s > 0.005)
    sh = "/".join(f"{k} {v * 100:.1f}%" for k, v in a["shares"].items())
    waits = a["wait_by_category"]
    wtop = max(waits, key=waits.get) if waits else "none"
    ok = "ok" if a["conservation_ok"] else "VIOLATED"
    return (f"critpath[{cp}] shares[{sh}] wait-dominant={wtop} "
            f"conservation={ok}")


@pytest.fixture
def exec_wl():
    return executed_workload()
