"""Table I: process counts and data sizes of the weak-scaling benchmark.

Regenerates the configuration table (total processes, producer/consumer
split, grid points, particles, total GiB) from the workload definitions,
and benchmarks the workload generator itself.
"""

import numpy as np

from conftest import PAPER_SCALES, executed_workload
from repro.bench import format_table, write_result
from repro.synth import (
    SyntheticWorkload,
    grid_values,
    producer_grid_selection,
)


def table1_rows(wl: SyntheticWorkload):
    rows = []
    for total in PAPER_SCALES:
        nprod, ncons = wl.split_procs(total)
        rows.append([
            total,
            nprod,
            ncons,
            f"{wl.total_grid_points(nprod):.1e}",
            f"{wl.total_particles(nprod):.1e}",
            round(wl.total_bytes(nprod) / 2**30, 2),
        ])
    return rows


def test_table1_regenerate(benchmark):
    wl = SyntheticWorkload()  # the paper's 1e6 + 1e6 per producer proc
    rows = table1_rows(wl)
    text = format_table(
        ["Total #MPI Procs.", "#Producer Procs.", "#Consumer Procs.",
         "Total #Grid Points", "Total #Particles", "Total Data Size (GiB)"],
        rows,
        title="Table I: processes and data sizes, 1 producer + 1 consumer "
              "task (3:1 split, 1e6 grid points + 1e6 particles per "
              "producer process)",
    )
    write_result("table1_configuration.txt", text)

    # Sanity against the paper's printed row: 1024 procs -> 14.34 GiB.
    row_1024 = dict(zip((4, 16, 64, 256, 1024, 4096, 16384),
                        rows))[1024]
    assert row_1024[1] == 768 and row_1024[2] == 256
    assert abs(row_1024[5] - 14.34) / 14.34 < 0.02

    # Benchmark target: generating one producer's grid values.
    wl_exec = executed_workload()
    shape = wl_exec.grid_shape(3)
    sel = producer_grid_selection(shape, 0, 3)

    def gen():
        return grid_values(sel, shape)

    vals = benchmark(gen)
    assert vals.dtype == np.uint64
