#!/usr/bin/env python
"""Wall-clock performance harness for the simulator core.

``python benchmarks/bench_wallclock.py --output BENCH_wallclock.json``
times, in *real* seconds, the fig5 executed drivers (LowFive memory and
file mode), the fig7 pure-MPI baseline, and a high-rank message-matching
stress workload (default 256 simulated ranks doing reverse-order
many-to-one receives -- the worst case for mailbox matching and wakeup
delivery). Virtual-time results (``vtime``, ``messages``,
``bytes_sent``) are recorded alongside so perf PRs can prove the cost
model is untouched: none of these fields may drift.

With ``--check-ref`` the run is compared against a committed reference
(``benchmarks/BENCH_wallclock_ref.json``) via the shared
:mod:`repro.obs.ledger` comparator: any virtual-time drift exits
nonzero, and wall-clock speedups vs the reference's recorded seed
timings are written into the output document. Wall seconds are
machine-dependent, so speedups are informational; the drift check is
the hard gate.

The suite also measures telemetry self-accounting: the fig5 memory
workload runs once with the full observability stack and once with a
:class:`~repro.obs.noop.NullObsContext`, recording the wall-clock
overhead fraction (the virtual results must be identical -- telemetry
never changes simulation semantics). ``--obs-budget FRAC`` turns the
overhead into a hard gate. ``--ledger PATH`` appends every run as a
:class:`~repro.obs.ledger.RunRecord` to a JSONL run ledger.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

#: Bump when the document layout changes incompatibly.
SCHEMA_VERSION = 1

#: Virtual fields that must be bit-identical across perf-only changes.
VIRTUAL_FIELDS = ("vtime", "messages", "bytes_sent")

DEFAULT_REF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_wallclock_ref.json")


def stress_matching(comm, rounds: int = 4, flood: int = 8):
    """Reverse-order many-to-one: the mailbox-matching worst case.

    Every rank floods rank 0, which receives fully-qualified
    ``(source, tag)`` matches in *reverse* source order, so the mailbox
    backs up to ~``(size-1) * flood`` messages and every receive used
    to rescan all of them (and every delivery used to wake rank 0).
    """
    me, n = comm.rank, comm.size
    if me == 0:
        for r in range(rounds):
            for src in range(n - 1, 0, -1):
                for _ in range(flood):
                    comm.recv(source=src, tag=r)
    else:
        for r in range(rounds):
            for k in range(flood):
                comm.send((me, r, k), dest=0, tag=r)
    return comm.vtime


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time; returns (wall_seconds, result)."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return best, result


def run_suite(elems: int, nprocs: int, stress_ranks: int,
              repeats: int) -> list[dict]:
    """Execute every workload; returns the per-run records."""
    import repro.bench as bench
    from repro.simmpi import run_world
    from repro.synth import SyntheticWorkload

    wl = SyntheticWorkload(grid_points_per_proc=elems,
                           particles_per_proc=elems)
    nprod, ncons = wl.split_procs(nprocs)
    runs = []
    for figure, transport, fn in (
        ("fig5", "lowfive_memory", "run_lowfive_memory"),
        ("fig5", "lowfive_file", "run_lowfive_file"),
        ("fig7", "pure_mpi", "run_pure_mpi"),
    ):
        wall, res = _timed(
            lambda fn=fn: getattr(bench, fn)(nprod, ncons, wl), repeats)
        runs.append({
            "workload": f"{figure}/{transport}/P{nprocs}",
            "nprocs": nprocs,
            "wall_seconds": wall,
            "vtime": res.vtime,
            "messages": res.messages,
            "bytes_sent": res.bytes_sent,
        })

    wall, res = _timed(
        lambda: run_world(stress_ranks, stress_matching, timeout=600.0),
        repeats)
    runs.append({
        "workload": f"stress/matching/R{stress_ranks}",
        "nprocs": stress_ranks,
        "wall_seconds": wall,
        "vtime": res.vtime,
        "messages": res.messages,
        "bytes_sent": res.bytes_sent,
    })
    return runs


def measure_obs_overhead(elems: int, nprocs: int,
                         repeats: int) -> tuple[dict, list[str]]:
    """Telemetry self-accounting on the fig5 memory workload.

    Times the identical workflow with the full observability stack and
    with a :class:`~repro.obs.noop.NullObsContext`; virtual results
    must match exactly (telemetry must never perturb the simulation).
    Returns ``(run record, invariant problems)``.
    """
    from repro.bench.drivers import _lowfive_wf
    from repro.obs.noop import NullObsContext
    from repro.perfmodel.transports import THETA_KNL
    from repro.pfs import PFSStore
    from repro.synth import SyntheticWorkload

    wl = SyntheticWorkload(grid_points_per_proc=elems,
                           particles_per_proc=elems)
    nprod, ncons = wl.split_procs(nprocs)

    def once(obs=None):
        wf = _lowfive_wf(nprod, ncons, wl, THETA_KNL, "memory",
                         PFSStore())
        return wf.run(model=THETA_KNL.net, obs=obs)

    wall_on, res_on = _timed(once, repeats)
    wall_off, res_off = _timed(lambda: once(NullObsContext()), repeats)
    problems = []
    for fieldname in VIRTUAL_FIELDS:
        on, off = getattr(res_on, fieldname), getattr(res_off, fieldname)
        if on != off:
            problems.append(
                f"obs overhead: {fieldname} changed with telemetry "
                f"disabled ({on!r} vs {off!r}); observability must not "
                f"perturb the simulation"
            )
    frac = (wall_on - wall_off) / wall_off if wall_off > 0 else 0.0
    rec = {
        "workload": f"obs/overhead/P{nprocs}",
        "nprocs": nprocs,
        "wall_seconds": wall_on,
        "wall_obs_off": wall_off,
        "obs_overhead_frac": frac,
        "vtime": res_on.vtime,
        "messages": res_on.messages,
        "bytes_sent": res_on.bytes_sent,
    }
    return rec, problems


def compare(runs: list[dict], ref: dict) -> tuple[list[str], bool]:
    """Annotate ``runs`` with speedups vs ``ref``; returns
    (drift problems, compared anything). Thin wrapper over the shared
    :func:`repro.obs.ledger.compare_runs` comparator."""
    from repro.obs.ledger import compare_runs

    return compare_runs(runs, ref, exact=VIRTUAL_FIELDS,
                        check_digest=False, annotate_wall=True)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    ap.add_argument("--output", default="BENCH_wallclock.json",
                    help="output path (default BENCH_wallclock.json)")
    ap.add_argument("--elems", type=int,
                    default=int(os.environ.get("REPRO_BENCH_ELEMS",
                                               "60000")),
                    help="elements per producer rank for the fig "
                         "drivers (default 60000, or REPRO_BENCH_ELEMS)")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="total ranks for the fig drivers (default 4)")
    ap.add_argument("--stress-ranks", type=int, default=256,
                    help="simulated ranks of the matching stress "
                         "workload (default 256)")
    ap.add_argument("--repeats", type=int, default=1,
                    help="timing repeats per workload; best is kept")
    ap.add_argument("--ref", default=DEFAULT_REF,
                    help="reference document for speedup/drift "
                         "comparison (default the committed seed "
                         "baseline)")
    ap.add_argument("--check-ref", action="store_true",
                    help="exit nonzero when any virtual-time field "
                         "drifts from the reference")
    ap.add_argument("--obs-budget", type=float, default=None,
                    metavar="FRAC",
                    help="fail when the telemetry wall-clock overhead "
                         "fraction exceeds FRAC (e.g. 0.6 = 60%%)")
    ap.add_argument("--ledger", default=None, metavar="PATH",
                    help="append every run to this JSONL run ledger")
    args = ap.parse_args(argv)

    runs = run_suite(args.elems, args.nprocs, args.stress_ranks,
                     args.repeats)
    obs_rec, invariants = measure_obs_overhead(args.elems, args.nprocs,
                                               args.repeats)
    runs.append(obs_rec)
    if args.obs_budget is not None \
            and obs_rec["obs_overhead_frac"] > args.obs_budget:
        invariants.append(
            f"obs overhead {obs_rec['obs_overhead_frac']:.1%} exceeds "
            f"budget {args.obs_budget:.1%}"
        )

    from repro.obs.ledger import check_reference

    problems = check_reference(
        runs, args.ref,
        our_params={"elems_per_proc": args.elems, "nprocs": args.nprocs,
                    "stress_ranks": args.stress_ranks},
        check_ref=args.check_ref, exact=VIRTUAL_FIELDS,
        check_digest=False, annotate_wall=True,
    )

    doc = {
        "schema_version": SCHEMA_VERSION,
        "params": {
            "elems_per_proc": args.elems,
            "nprocs": args.nprocs,
            "stress_ranks": args.stress_ranks,
            "repeats": args.repeats,
            "machine": "THETA_KNL",
        },
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.ledger:
        from repro.obs.ledger import Ledger

        n = Ledger(args.ledger).append_doc(doc)
        print(f"appended {n} runs to {args.ledger}")

    for run in runs:
        speed = run.get("speedup_vs_reference")
        extra = f"  ({speed:.1f}x vs reference)" if speed else ""
        print(f"{run['workload']:32s} {run['wall_seconds']:8.3f}s "
              f"vtime={run['vtime']:.6g}{extra}")
    print(f"obs overhead: {obs_rec['obs_overhead_frac']:+.1%} "
          f"({obs_rec['wall_seconds']:.3f}s instrumented vs "
          f"{obs_rec['wall_obs_off']:.3f}s disabled)")
    print(f"wrote {args.output}: {len(runs)} runs, "
          f"schema v{SCHEMA_VERSION}")
    for p in invariants + problems:
        print(f"ERROR: {p}", file=sys.stderr)
    if invariants:
        return 1  # telemetry invariants and budget always fail
    return 1 if (problems and args.check_ref) else 0


if __name__ == "__main__":
    raise SystemExit(main())
