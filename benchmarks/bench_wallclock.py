#!/usr/bin/env python
"""Wall-clock performance harness for the simulator core.

``python benchmarks/bench_wallclock.py --output BENCH_wallclock.json``
times, in *real* seconds, the fig5 executed drivers (LowFive memory and
file mode), the fig7 pure-MPI baseline, and a high-rank message-matching
stress workload (default 256 simulated ranks doing reverse-order
many-to-one receives -- the worst case for mailbox matching and wakeup
delivery). Virtual-time results (``vtime``, ``messages``,
``bytes_sent``) are recorded alongside so perf PRs can prove the cost
model is untouched: none of these fields may drift.

With ``--check-ref`` the run is compared against a committed reference
(``benchmarks/BENCH_wallclock_ref.json``): any virtual-time drift exits
nonzero, and wall-clock speedups vs the reference's recorded seed
timings are written into the output document. Wall seconds are
machine-dependent, so speedups are informational; the drift check is
the hard gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

#: Bump when the document layout changes incompatibly.
SCHEMA_VERSION = 1

#: Virtual fields that must be bit-identical across perf-only changes.
VIRTUAL_FIELDS = ("vtime", "messages", "bytes_sent")

DEFAULT_REF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_wallclock_ref.json")


def stress_matching(comm, rounds: int = 4, flood: int = 8):
    """Reverse-order many-to-one: the mailbox-matching worst case.

    Every rank floods rank 0, which receives fully-qualified
    ``(source, tag)`` matches in *reverse* source order, so the mailbox
    backs up to ~``(size-1) * flood`` messages and every receive used
    to rescan all of them (and every delivery used to wake rank 0).
    """
    me, n = comm.rank, comm.size
    if me == 0:
        for r in range(rounds):
            for src in range(n - 1, 0, -1):
                for _ in range(flood):
                    comm.recv(source=src, tag=r)
    else:
        for r in range(rounds):
            for k in range(flood):
                comm.send((me, r, k), dest=0, tag=r)
    return comm.vtime


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time; returns (wall_seconds, result)."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return best, result


def run_suite(elems: int, nprocs: int, stress_ranks: int,
              repeats: int) -> list[dict]:
    """Execute every workload; returns the per-run records."""
    import repro.bench as bench
    from repro.simmpi import run_world
    from repro.synth import SyntheticWorkload

    wl = SyntheticWorkload(grid_points_per_proc=elems,
                           particles_per_proc=elems)
    nprod, ncons = wl.split_procs(nprocs)
    runs = []
    for figure, transport, fn in (
        ("fig5", "lowfive_memory", "run_lowfive_memory"),
        ("fig5", "lowfive_file", "run_lowfive_file"),
        ("fig7", "pure_mpi", "run_pure_mpi"),
    ):
        wall, res = _timed(
            lambda fn=fn: getattr(bench, fn)(nprod, ncons, wl), repeats)
        runs.append({
            "workload": f"{figure}/{transport}/P{nprocs}",
            "nprocs": nprocs,
            "wall_seconds": wall,
            "vtime": res.vtime,
            "messages": res.messages,
            "bytes_sent": res.bytes_sent,
        })

    wall, res = _timed(
        lambda: run_world(stress_ranks, stress_matching, timeout=600.0),
        repeats)
    runs.append({
        "workload": f"stress/matching/R{stress_ranks}",
        "nprocs": stress_ranks,
        "wall_seconds": wall,
        "vtime": res.vtime,
        "messages": res.messages,
        "bytes_sent": res.bytes_sent,
    })
    return runs


def compare(runs: list[dict], ref: dict) -> tuple[list[str], bool]:
    """Annotate ``runs`` with speedups vs ``ref``; returns
    (drift problems, compared anything)."""
    problems = []
    compared = False
    ref_runs = {r["workload"]: r for r in ref.get("runs", [])}
    for run in runs:
        base = ref_runs.get(run["workload"])
        if base is None:
            continue
        compared = True
        for fieldname in VIRTUAL_FIELDS:
            if run[fieldname] != base[fieldname]:
                problems.append(
                    f"{run['workload']}: {fieldname} drifted "
                    f"{base[fieldname]!r} -> {run[fieldname]!r}"
                )
        if base.get("wall_seconds"):
            run["ref_wall_seconds"] = base["wall_seconds"]
            run["speedup_vs_reference"] = (
                base["wall_seconds"] / run["wall_seconds"]
            )
    return problems, compared


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    ap.add_argument("--output", default="BENCH_wallclock.json",
                    help="output path (default BENCH_wallclock.json)")
    ap.add_argument("--elems", type=int,
                    default=int(os.environ.get("REPRO_BENCH_ELEMS",
                                               "60000")),
                    help="elements per producer rank for the fig "
                         "drivers (default 60000, or REPRO_BENCH_ELEMS)")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="total ranks for the fig drivers (default 4)")
    ap.add_argument("--stress-ranks", type=int, default=256,
                    help="simulated ranks of the matching stress "
                         "workload (default 256)")
    ap.add_argument("--repeats", type=int, default=1,
                    help="timing repeats per workload; best is kept")
    ap.add_argument("--ref", default=DEFAULT_REF,
                    help="reference document for speedup/drift "
                         "comparison (default the committed seed "
                         "baseline)")
    ap.add_argument("--check-ref", action="store_true",
                    help="exit nonzero when any virtual-time field "
                         "drifts from the reference")
    args = ap.parse_args(argv)

    runs = run_suite(args.elems, args.nprocs, args.stress_ranks,
                     args.repeats)

    problems: list[str] = []
    ref_doc = None
    if os.path.exists(args.ref):
        with open(args.ref) as f:
            ref_doc = json.load(f)
        ref_params = ref_doc.get("params", {})
        our_params = {"elems_per_proc": args.elems, "nprocs": args.nprocs,
                      "stress_ranks": args.stress_ranks}
        if all(ref_params.get(k) == v for k, v in our_params.items()):
            problems, compared = compare(runs, ref_doc)
            if args.check_ref and not compared:
                problems.append("reference matched no workloads")
        elif args.check_ref:
            problems.append(
                f"reference params {ref_params} do not cover this run "
                f"({our_params}); cannot check drift"
            )
    elif args.check_ref:
        problems.append(f"reference {args.ref} not found")

    doc = {
        "schema_version": SCHEMA_VERSION,
        "params": {
            "elems_per_proc": args.elems,
            "nprocs": args.nprocs,
            "stress_ranks": args.stress_ranks,
            "repeats": args.repeats,
            "machine": "THETA_KNL",
        },
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")

    for run in runs:
        speed = run.get("speedup_vs_reference")
        extra = f"  ({speed:.1f}x vs reference)" if speed else ""
        print(f"{run['workload']:32s} {run['wall_seconds']:8.3f}s "
              f"vtime={run['vtime']:.6g}{extra}")
    print(f"wrote {args.output}: {len(runs)} runs, "
          f"schema v{SCHEMA_VERSION}")
    for p in problems:
        print(f"ERROR: {p}", file=sys.stderr)
    return 1 if (problems and args.check_ref) else 0


if __name__ == "__main__":
    raise SystemExit(main())
