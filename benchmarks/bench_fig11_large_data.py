"""Figure 11: the three fastest in situ transports at 10x data size
(1e7 grid points + 1e7 particles per producer process, Cori Haswell).

Paper result: the trends of the smaller runs hold -- LowFive remains as
fast as hand-written MPI and ~20% slower than DataSpaces at the largest
scale (0.55 TiB total).
"""

import pytest

from conftest import PAPER_SCALES, executed_workload
from repro.bench import (
    ascii_loglog,
    format_series_table,
    run_dataspaces,
    run_lowfive_memory,
    run_pure_mpi,
    write_result,
)
from repro.perfmodel import (
    CORI_HASWELL,
    dataspaces_time,
    lowfive_memory_time,
    pure_mpi_time,
)
from repro.synth import SyntheticWorkload

SCALES = [P for P in PAPER_SCALES if P <= 4096]
WL10 = SyntheticWorkload(grid_points_per_proc=10**7,
                         particles_per_proc=10**7)


def fig11_series():
    lf, ds, mpi = [], [], []
    for P in SCALES:
        nprod, ncons = WL10.split_procs(P)
        lf.append(lowfive_memory_time(nprod, ncons, WL10, CORI_HASWELL))
        ds.append(dataspaces_time(nprod, ncons, WL10, CORI_HASWELL))
        mpi.append(pure_mpi_time(nprod, ncons, WL10, CORI_HASWELL))
    return lf, ds, mpi


def test_fig11_regenerate(benchmark, exec_wl):
    lf, ds, mpi = fig11_series()
    text = format_series_table(
        SCALES,
        {"LowFive Memory Mode": lf, "DataSpaces": ds, "MPI": mpi},
        title="Figure 11: weak scaling at 10x data (1e7+1e7 per producer "
              "proc, 0.55 TiB at 4K), LowFive vs DataSpaces vs MPI "
              "(modeled, Cori Haswell)",
    )

    # Total data at the largest scale ~0.55 TiB (paper).
    nprod, _ = WL10.split_procs(4096)
    assert abs(WL10.total_bytes(nprod) / 2**40 - 0.55) < 0.06

    # Trends stay true at 10x: LowFive ~= MPI, DataSpaces ahead by
    # a modest factor (paper: ~20% at the largest scale).
    for l, m in zip(lf, mpi):
        assert abs(l - m) / m < 0.15
    assert all(d < l for d, l in zip(ds, lf))
    assert 1.1 < lf[-1] / ds[-1] < 2.0

    # Executed validation at a 10x-shaped (but reduced) workload.
    wl_exec = SyntheticWorkload(
        grid_points_per_proc=10 * exec_wl.grid_points_per_proc,
        particles_per_proc=10 * exec_wl.particles_per_proc,
    )
    plot = ascii_loglog(
        SCALES,
        {"LowFive Memory Mode": lf, "DataSpaces": ds, "MPI": mpi},
        title="Figure 11 (reproduced, log-log)",
    )
    lines = [text, plot,
             "Executed validation (reduced 10x workload, simmpi):"]
    for P in (4, 8):
        nprod, ncons = wl_exec.split_procs(P)
        ex_lf = run_lowfive_memory(nprod, ncons, wl_exec, CORI_HASWELL)
        ex_ds = run_dataspaces(nprod, ncons, wl_exec, CORI_HASWELL)
        ex_mpi = run_pure_mpi(nprod, ncons, wl_exec, CORI_HASWELL)
        assert ex_ds.vtime < ex_lf.vtime
        lines.append(
            f"  P={P:3d}: executed LowFive {ex_lf.vtime:8.3f}s, "
            f"DataSpaces {ex_ds.vtime:8.3f}s, MPI {ex_mpi.vtime:8.3f}s"
        )
    write_result("fig11_large_data.txt", "\n".join(lines) + "\n")

    nprod, ncons = wl_exec.split_procs(4)
    benchmark.pedantic(
        lambda: run_lowfive_memory(nprod, ncons, wl_exec, CORI_HASWELL),
        rounds=2, iterations=1,
    )
